package server

import (
	"context"
	"errors"
	"net/http"

	"minequery"
	"minequery/internal/cluster"
)

// Error codes returned in the JSON error envelope. Each maps to one
// HTTP status; clients branch on Code, not on message text.
const (
	CodeBadRequest   = "bad_request"   // 400: malformed request or SQL error
	CodeNotFound     = "not_found"     // 404: unknown session/statement
	CodeRejected     = "rejected"      // 429: admission queue full
	CodeShuttingDown = "shutting_down" // 503: server is draining
	CodeInternal     = "internal"      // 500: unexpected failure
	CodeTimeout      = "timeout"       // 504: per-query deadline exceeded
	CodeCancelled    = "cancelled"     // 499: client went away mid-query
	CodeStalePlan    = "stale_plan"    // 409: catalog churned faster than re-prepare retries
	CodeParse        = "parse_error"   // 400: SQL failed to lex or parse
	CodeUnknownTable = "unknown_table" // 404: query names a table the catalog lacks
	CodeUnknownModel = "unknown_model" // 404: query names a model the catalog lacks
	CodeTransient    = "transient"     // 503: transient failure survived retries and fallback; safe to retry

	// CodeUnsupportedQuery is a 400: the SQL parsed but the engine
	// cannot execute its shape (e.g. a rejected aggregate form).
	CodeUnsupportedQuery = "unsupported_query"

	// Cluster codes (coordinator mode and the shard-exec endpoint).
	CodeEpochMismatch    = "epoch_mismatch"    // 409: shard catalog epoch differs from the coordinator's expectation
	CodeShardUnavailable = "shard_unavailable" // 502: a shard could not be reached and the query cannot be answered soundly
)

// statusClientClosedRequest is nginx's non-standard 499: the client
// disconnected before the response was produced.
const statusClientClosedRequest = 499

// apiError is a typed server error carrying its wire code.
type apiError struct {
	code string
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errBadRequest(msg string) error { return &apiError{code: CodeBadRequest, msg: msg} }
func errNotFound(msg string) error   { return &apiError{code: CodeNotFound, msg: msg} }

// errRejected is returned by the admission controller when the wait
// queue is at capacity.
var errRejected = &apiError{code: CodeRejected, msg: "server busy: admission queue full"}

// errShuttingDown is returned once Shutdown has begun.
var errShuttingDown = &apiError{code: CodeShuttingDown, msg: "server is shutting down"}

// classify maps an error to (code, http status). Context errors from
// query execution become timeout/cancelled; apiErrors keep their code;
// anything else is a bad request if it happened before execution (the
// caller decides) or internal.
func classify(err error) (string, int) {
	// A RemoteError is a shard's own typed answer relayed by the
	// coordinator: pass the original code and status through so cluster
	// clients see exactly what a single node would have returned.
	var re *cluster.RemoteError
	if errors.As(err, &re) {
		return re.Code, re.Status
	}
	var ae *apiError
	if errors.As(err, &ae) {
		switch ae.code {
		case CodeRejected:
			return CodeRejected, http.StatusTooManyRequests
		case CodeShuttingDown:
			return CodeShuttingDown, http.StatusServiceUnavailable
		case CodeNotFound:
			return CodeNotFound, http.StatusNotFound
		case CodeBadRequest:
			return CodeBadRequest, http.StatusBadRequest
		case CodeEpochMismatch:
			return CodeEpochMismatch, http.StatusConflict
		case CodeShardUnavailable:
			return CodeShardUnavailable, http.StatusBadGateway
		default:
			return CodeInternal, http.StatusInternalServerError
		}
	}
	switch {
	// Shard availability must outrank the transient check: a ShardError
	// usually wraps ErrTransient (that is what made it retryable), but
	// "a named shard is down" is the actionable fact — 502 with the
	// shard id beats a generic 503.
	case errors.Is(err, cluster.ErrShardUnavailable):
		return CodeShardUnavailable, http.StatusBadGateway
	case errors.Is(err, cluster.ErrEpochMismatch):
		return CodeEpochMismatch, http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout, http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return CodeCancelled, statusClientClosedRequest
	case errors.Is(err, minequery.ErrStalePlan):
		return CodeStalePlan, http.StatusConflict
	case errors.Is(err, minequery.ErrParse):
		return CodeParse, http.StatusBadRequest
	case errors.Is(err, minequery.ErrUnsupportedQuery):
		return CodeUnsupportedQuery, http.StatusBadRequest
	case errors.Is(err, minequery.ErrUnknownTable):
		return CodeUnknownTable, http.StatusNotFound
	case errors.Is(err, minequery.ErrUnknownModel):
		return CodeUnknownModel, http.StatusNotFound
	case errors.Is(err, minequery.ErrUnknownSubscription):
		return CodeNotFound, http.StatusNotFound
	case errors.Is(err, minequery.ErrTransient):
		return CodeTransient, http.StatusServiceUnavailable
	}
	return CodeBadRequest, http.StatusBadRequest
}
