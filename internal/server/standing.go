package server

// The standing-query surface: POST /v1/subscribe registers a SELECT as
// a standing query, DELETE /v1/subscribe/{id} removes it, GET
// /v1/notifications long-polls the engine's bounded delivery queue, and
// GET /v1/subscriptions lists the registered set with per-subscription
// match/drop counters.
//
// Notifications deliberately bypass admission control: a long-poll
// parked on an empty queue holds no engine resources, and letting it
// occupy a worker slot would let idle subscribers starve real queries.
// The poll is still bounded by the request timeout and registered with
// the shutdown drain group.

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"minequery"
)

type subscribeRequest struct {
	SQL string `json:"sql"`
}

type subscribeResponse struct {
	SubscriptionID int64  `json:"subscription_id"`
	Table          string `json:"table"`
}

// notificationBody is the wire form of one standing-query match. Row
// values use the same JSON mapping as query result rows.
type notificationBody struct {
	Seq            int64    `json:"seq"`
	SubscriptionID int64    `json:"subscription_id"`
	Table          string   `json:"table"`
	Columns        []string `json:"columns"`
	Row            []any    `json:"row"`
	Epoch          int64    `json:"epoch"`
}

type notificationsResponse struct {
	Notifications []notificationBody `json:"notifications"`
	Count         int                `json:"count"`
}

type standingStatsBody struct {
	Registered int   `json:"registered"`
	Matches    int64 `json:"matches"`
	Evals      int64 `json:"evals"`
	ModelCalls int64 `json:"model_calls"`
	Dropped    int64 `json:"dropped"`
	Recompiles int64 `json:"recompiles"`
}

type subscriptionsResponse struct {
	Subscriptions []minequery.SubscriptionInfo `json:"subscriptions"`
	Stats         standingStatsBody            `json:"stats"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	var req subscribeRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.SQL == "" {
		s.writeError(w, errBadRequest("sql is required"))
		return
	}
	id, err := s.eng.Subscribe(req.SQL)
	if err != nil {
		s.writeError(w, err)
		return
	}
	table := ""
	for _, info := range s.eng.Subscriptions() {
		if info.ID == id {
			table = info.Table
			break
		}
	}
	writeJSON(w, http.StatusOK, subscribeResponse{SubscriptionID: id, Table: table})
}

func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		s.writeError(w, errBadRequest("subscription id must be an integer"))
		return
	}
	if err := s.eng.Unsubscribe(id); err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"unsubscribed": true})
}

func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	st := s.eng.StandingStats()
	subs := s.eng.Subscriptions()
	if subs == nil {
		subs = []minequery.SubscriptionInfo{}
	}
	writeJSON(w, http.StatusOK, subscriptionsResponse{
		Subscriptions: subs,
		Stats: standingStatsBody{
			Registered: st.Registered,
			Matches:    st.Matches,
			Evals:      st.Evals,
			ModelCalls: st.ModelCalls,
			Dropped:    st.Dropped,
			Recompiles: st.Recompiles,
		},
	})
}

// handleNotifications long-polls the delivery queue: it waits up to
// timeout_ms (default 10s, capped at 60s) for at least one notification
// and returns up to max (default 100) in one batch. An empty batch with
// a 200 means the wait timed out — poll again; it is not an error.
func (s *Server) handleNotifications(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	wait := 10 * time.Second
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			s.writeError(w, errBadRequest("timeout_ms must be a non-negative integer"))
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > time.Minute {
			wait = time.Minute
		}
	}
	max := 0
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			s.writeError(w, errBadRequest("max must be a positive integer"))
			return
		}
		max = n
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	ns, err := s.eng.Notifications(ctx, max)
	if err != nil {
		// The poll deadline lapsing with nothing queued is the normal idle
		// outcome of a long poll, not a query timeout: answer 200 with an
		// empty batch so clients just re-poll. A client disconnect still
		// surfaces as cancelled.
		if ctx.Err() == context.DeadlineExceeded && r.Context().Err() == nil {
			writeJSON(w, http.StatusOK, notificationsResponse{Notifications: []notificationBody{}})
			return
		}
		s.writeError(w, err)
		return
	}
	body := notificationsResponse{Notifications: make([]notificationBody, len(ns)), Count: len(ns)}
	for i, n := range ns {
		row := rowsToJSON([]minequery.Tuple{n.Row})[0]
		body.Notifications[i] = notificationBody{
			Seq:            n.Seq,
			SubscriptionID: n.SubID,
			Table:          n.Table,
			Columns:        n.Columns,
			Row:            row,
			Epoch:          n.Epoch,
		}
	}
	writeJSON(w, http.StatusOK, body)
}
