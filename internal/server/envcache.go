// Package server is minequeryd's core: a long-running HTTP/JSON front
// end over a minequery.Engine with sessions, a prepared-statement
// registry, a shared envelope cache, and admission control. The
// embedded engine stays single-writer for catalog changes, while query
// execution is concurrency-safe; the server documents the one caveat —
// per-query I/O counters are attributed engine-wide, so CostUnits of
// overlapping queries can bleed into each other.
package server

import (
	"sync"
	"sync/atomic"

	"minequery"
)

// envCache is a bounded, concurrency-safe minequery.EnvelopeCache with
// FIFO eviction and hit/miss counters. Correctness never depends on
// eviction policy: keys embed model content fingerprints, so a stale
// entry is unreachable by construction and eviction is purely a space
// bound.
type envCache struct {
	mu    sync.Mutex
	max   int
	m     map[string]minequery.CachedEnvelope
	order []string // insertion order, for FIFO eviction

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	purges    atomic.Int64
}

func newEnvCache(max int) *envCache {
	if max <= 0 {
		max = 1024
	}
	return &envCache{max: max, m: make(map[string]minequery.CachedEnvelope)}
}

func (c *envCache) Get(key string) (minequery.CachedEnvelope, bool) {
	c.mu.Lock()
	ce, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return ce, ok
}

func (c *envCache) Put(key string, ce minequery.CachedEnvelope) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; exists {
		c.m[key] = ce
		return
	}
	for len(c.m) >= c.max && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.m, victim)
		c.evictions.Add(1)
	}
	c.m[key] = ce
	c.order = append(c.order, key)
}

// Purge empties the cache. Fingerprint keying makes this optional for
// correctness; the server calls it on model-affecting invalidation
// events so dead entries stop occupying the budget.
func (c *envCache) Purge() {
	c.mu.Lock()
	c.m = make(map[string]minequery.CachedEnvelope)
	c.order = nil
	c.mu.Unlock()
	c.purges.Add(1)
}

// envCacheStats is the /v1/stats view of the cache.
type envCacheStats struct {
	Size      int   `json:"size"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Purges    int64 `json:"purges"`
}

func (c *envCache) stats() envCacheStats {
	c.mu.Lock()
	size := len(c.m)
	c.mu.Unlock()
	return envCacheStats{
		Size:      size,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Purges:    c.purges.Load(),
	}
}
