package server

import (
	"net/http"
	"testing"
)

type execWire struct {
	Statement    string   `json:"statement"`
	Table        string   `json:"table"`
	RowsAffected int64    `json:"rows_affected"`
	Retrained    []string `json:"retrained"`
	Epoch        int64    `json:"epoch"`
	Model        *struct {
		Name    string `json:"name"`
		Classes int    `json:"classes"`
		Version int64  `json:"version"`
	} `json:"model"`
}

// TestExecEndpoint drives the write path over HTTP: insert rows, see
// them from a query, update and delete them, and train a model with
// CREATE MODEL — all through POST /v1/exec.
func TestExecEndpoint(t *testing.T) {
	eng := testEngine(t, 2000)
	_, ts := testServer(t, eng, Config{})

	status, raw := call(t, "POST", ts.URL+"/v1/exec", map[string]any{
		"sql": "INSERT INTO customers (id, age, income, segment) VALUES (90001, 3, 5, 'regular'), (90002, 4, 6, 'budget')",
	})
	if status != http.StatusOK {
		t.Fatalf("insert: status %d: %s", status, raw)
	}
	ins := decode[execWire](t, raw)
	if ins.Statement != "insert" || ins.RowsAffected != 2 {
		t.Fatalf("insert response: %+v", ins)
	}

	status, raw = call(t, "POST", ts.URL+"/v1/execute", map[string]any{
		"sql": "SELECT id FROM customers WHERE id >= 90001",
	})
	if status != http.StatusOK {
		t.Fatalf("select: status %d: %s", status, raw)
	}
	if sel := decode[executeWire](t, raw); sel.RowCount != 2 {
		t.Fatalf("expected 2 inserted rows visible, got %d", sel.RowCount)
	}

	status, raw = call(t, "POST", ts.URL+"/v1/exec", map[string]any{
		"sql": "UPDATE customers SET segment = 'vip' WHERE id = 90001",
	})
	if status != http.StatusOK {
		t.Fatalf("update: status %d: %s", status, raw)
	}
	if upd := decode[execWire](t, raw); upd.RowsAffected != 1 {
		t.Fatalf("update response: %+v", upd)
	}

	status, raw = call(t, "POST", ts.URL+"/v1/exec", map[string]any{
		"sql": "DELETE FROM customers WHERE id >= 90001",
	})
	if status != http.StatusOK {
		t.Fatalf("delete: status %d: %s", status, raw)
	}
	if del := decode[execWire](t, raw); del.RowsAffected != 2 {
		t.Fatalf("delete response: %+v", del)
	}

	status, raw = call(t, "POST", ts.URL+"/v1/exec", map[string]any{
		"sql": "CREATE MODEL segtree ON customers PREDICT segment USING dtree",
	})
	if status != http.StatusOK {
		t.Fatalf("create model: status %d: %s", status, raw)
	}
	cm := decode[execWire](t, raw)
	if cm.Statement != "create model" || cm.Model == nil || cm.Model.Name != "segtree" || cm.Model.Classes == 0 {
		t.Fatalf("create model response: %+v", cm)
	}

	// The new model is immediately queryable via PREDICTION JOIN.
	status, raw = call(t, "POST", ts.URL+"/v1/execute", map[string]any{
		"sql": `SELECT id FROM customers
			PREDICTION JOIN segtree AS m ON m.age = customers.age AND m.income = customers.income
			WHERE m.segment = 'budget' LIMIT 5`,
	})
	if status != http.StatusOK {
		t.Fatalf("predict query: status %d: %s", status, raw)
	}
}

// TestExecEndpointErrors checks the write path speaks the server's
// error taxonomy.
func TestExecEndpointErrors(t *testing.T) {
	eng := testEngine(t, 500)
	_, ts := testServer(t, eng, Config{})

	for _, tc := range []struct {
		sql    string
		status int
		code   string
	}{
		{"INSERT INTO customers VALUES (", http.StatusBadRequest, CodeParse},
		{"DROP TABLE customers", http.StatusBadRequest, CodeUnsupportedQuery},
		{"SELECT id FROM customers", http.StatusBadRequest, CodeUnsupportedQuery},
		{"DELETE FROM nope", http.StatusNotFound, CodeUnknownTable},
		{"CREATE MODEL m ON customers PREDICT segment USING svm", http.StatusBadRequest, CodeUnsupportedQuery},
	} {
		status, raw := call(t, "POST", ts.URL+"/v1/exec", map[string]any{"sql": tc.sql})
		if status != tc.status || errCode(t, raw) != tc.code {
			t.Errorf("%q: got status %d code %s, want %d %s (%s)",
				tc.sql, status, errCode(t, raw), tc.status, tc.code, raw)
		}
	}
}
