package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"minequery"
	"minequery/internal/sqlparse"
)

// stmtEntry is one registered statement. The registry's map lock is
// never held across engine calls; each entry serializes its own
// (re)preparation under entry.mu while executions of an already-valid
// plan proceed without it.
type stmtEntry struct {
	id    string
	key   string
	sql   string
	norm  string // normalized SQL, sans hint prefix (slowlog display)
	force bool   // ForceSeqScan hint baked into the plan

	mu       sync.Mutex
	prepared *minequery.Prepared
}

// tableName reports the base table of the entry's plan, or "" before
// the first preparation (the breaker then skips this execution).
func (e *stmtEntry) tableName() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prepared == nil {
		return ""
	}
	t, _ := e.prepared.References()
	return t
}

// registry caches prepared statements keyed by normalized SQL: two
// spellings of the same query share one plan. Entries go stale via the
// catalog epoch and are re-prepared lazily on next use — invalidation
// events are only counted, never walked, so a retrain costs O(1) no
// matter how many statements are registered.
type registry struct {
	eng *minequery.Engine

	mu    sync.Mutex
	next  int64
	byKey map[string]*stmtEntry
	byID  map[string]*stmtEntry
	order []string // keys in insertion order, for FIFO eviction
	max   int

	hits       atomic.Int64 // prepare/execute served from a cached valid plan
	misses     atomic.Int64 // first-time preparations
	reprepares atomic.Int64 // stale plans rebuilt in place
	evictions  atomic.Int64
}

func newRegistry(eng *minequery.Engine, max int) *registry {
	if max <= 0 {
		max = 256
	}
	return &registry{
		eng:   eng,
		byKey: map[string]*stmtEntry{},
		byID:  map[string]*stmtEntry{},
		max:   max,
	}
}

// cacheKey normalizes sql and folds in plan hints, so the same text
// prepared with different hints yields distinct plans. The bare
// normalized form is returned alongside for display surfaces (the
// slow-query log) that must not leak the hint prefix.
func cacheKey(sql string, force bool) (key, norm string, err error) {
	norm, err = sqlparse.Normalize(sql)
	if err != nil {
		return "", "", err
	}
	if force {
		return "force-seqscan|" + norm, norm, nil
	}
	return norm, norm, nil
}

// lookup finds or creates the entry for (sql, force) without preparing
// it. The bool reports whether the entry already existed.
func (r *registry) lookup(sql string, force bool) (*stmtEntry, bool, error) {
	key, norm, err := cacheKey(sql, force)
	if err != nil {
		// Pass the error through untouched: it wraps minequery.ErrParse,
		// which classify maps to the typed parse_error code.
		return nil, false, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ent, ok := r.byKey[key]; ok {
		return ent, true, nil
	}
	for len(r.byKey) >= r.max && len(r.order) > 0 {
		victim := r.order[0]
		r.order = r.order[1:]
		if old, ok := r.byKey[victim]; ok {
			delete(r.byKey, victim)
			delete(r.byID, old.id)
			r.evictions.Add(1)
		}
	}
	r.next++
	ent := &stmtEntry{id: fmt.Sprintf("q%d", r.next), key: key, sql: sql, norm: norm, force: force}
	r.byKey[key] = ent
	r.byID[ent.id] = ent
	r.order = append(r.order, key)
	return ent, false, nil
}

func (r *registry) byStatementID(id string) (*stmtEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ent, ok := r.byID[id]
	return ent, ok
}

// prepare ensures the entry holds a valid plan, building or rebuilding
// it as needed. cached reports whether a previously built, still-valid
// plan was reused (the /v1/prepare response's "cached" field and the
// hit counter's definition).
func (r *registry) prepare(sql string, force bool) (ent *stmtEntry, cached bool, err error) {
	ent, _, err = r.lookup(sql, force)
	if err != nil {
		return nil, false, err
	}
	ent.mu.Lock()
	defer ent.mu.Unlock()
	if ent.prepared != nil && ent.prepared.Valid() {
		r.hits.Add(1)
		return ent, true, nil
	}
	p, err := r.eng.Prepare(ent.sql, planHints(ent.force)...)
	if err != nil {
		return nil, false, err
	}
	if ent.prepared != nil {
		r.reprepares.Add(1)
	} else {
		// First build for this entry — whether we created it or a
		// concurrent caller did, no plan existed yet, so it's a miss.
		r.misses.Add(1)
	}
	ent.prepared = p
	return ent, false, nil
}

// maxExecuteRetries bounds the re-prepare loop: each retry means the
// catalog changed mid-flight, so more than a handful signals a retrain
// storm and the caller gets the staleness error instead of livelock.
const maxExecuteRetries = 5

// execute runs the entry's plan, lazily (re)preparing when the plan is
// missing or stale. planReused reports whether this call executed a
// plan built by an earlier call — the signal that the prepared path
// skipped parse, envelope derivation, and optimization entirely.
func (r *registry) execute(ctx context.Context, ent *stmtEntry, execOpts []minequery.QueryOption) (res *minequery.Result, planReused bool, err error) {
	for attempt := 0; attempt <= maxExecuteRetries; attempt++ {
		ent.mu.Lock()
		p := ent.prepared
		if p == nil || !p.Valid() {
			np, perr := r.eng.Prepare(ent.sql, planHints(ent.force)...)
			if perr != nil {
				ent.mu.Unlock()
				return nil, false, perr
			}
			if p != nil {
				r.reprepares.Add(1)
			} else {
				r.misses.Add(1)
			}
			ent.prepared = np
			p = np
			reused := false
			ent.mu.Unlock()
			res, err = p.Execute(ctx, execOpts...)
			if err == nil {
				return res, reused, nil
			}
		} else {
			r.hits.Add(1)
			ent.mu.Unlock()
			res, err = p.Execute(ctx, execOpts...)
			if err == nil {
				return res, true, nil
			}
		}
		if !errors.Is(err, minequery.ErrStalePlan) {
			return nil, false, err
		}
		// Plan went stale between the validity check and execution; loop
		// to rebuild against the new catalog state.
	}
	return nil, false, err
}

// planHints translates the registry's force flag to Prepare options.
func planHints(force bool) []minequery.QueryOption {
	if force {
		return []minequery.QueryOption{minequery.WithForcedPath("seqscan")}
	}
	return nil
}

// registryStats is the /v1/stats view of the statement cache.
type registryStats struct {
	Size       int   `json:"size"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Reprepares int64 `json:"reprepares"`
	Evictions  int64 `json:"evictions"`
}

func (r *registry) stats() registryStats {
	r.mu.Lock()
	size := len(r.byKey)
	r.mu.Unlock()
	return registryStats{
		Size:       size,
		Hits:       r.hits.Load(),
		Misses:     r.misses.Load(),
		Reprepares: r.reprepares.Load(),
		Evictions:  r.evictions.Load(),
	}
}
