package server

import (
	"context"
	"sync/atomic"
)

// admission is a bounded worker pool with a bounded wait queue: at most
// `workers` queries execute concurrently, at most `queueDepth` more
// wait for a slot, and everything beyond that is rejected immediately
// with a typed error rather than queued indefinitely (the standard
// load-shedding posture for a query server).
type admission struct {
	slots      chan struct{}
	queueDepth int64
	waiting    atomic.Int64

	rejected atomic.Int64
	admitted atomic.Int64
}

func newAdmission(workers, queueDepth int) *admission {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &admission{slots: make(chan struct{}, workers), queueDepth: int64(queueDepth)}
}

// acquire claims an execution slot, waiting in the queue if all slots
// are busy. It fails with errRejected when the queue is full, or with
// the context's error if the caller gives up while waiting. The caller
// must release() after the query finishes.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	default:
	}
	// Slow path: count ourselves into the wait queue, bounded.
	if a.waiting.Add(1) > a.queueDepth {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return errRejected
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.admitted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// admissionStats is the /v1/stats view of the pool.
type admissionStats struct {
	Workers  int   `json:"workers"`
	InFlight int   `json:"in_flight"`
	Waiting  int64 `json:"waiting"`
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
}

func (a *admission) stats() admissionStats {
	return admissionStats{
		Workers:  cap(a.slots),
		InFlight: len(a.slots),
		Waiting:  a.waiting.Load(),
		Admitted: a.admitted.Load(),
		Rejected: a.rejected.Load(),
	}
}
