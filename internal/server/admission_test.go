package server

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"minequery"
)

// gateServer builds a server whose executions block at the execHook
// seam (after admission, before the engine runs) until gate is closed.
// entered receives one value per request that reached the hook, so
// tests can sequence assertions against a request that is provably
// holding a worker slot.
func gateServer(t *testing.T, eng *minequery.Engine, cfg Config) (srv *Server, url string, gate chan struct{}, entered chan struct{}) {
	t.Helper()
	s, ts := testServer(t, eng, cfg)
	gate = make(chan struct{})
	entered = make(chan struct{}, 16)
	s.execHook = func() {
		entered <- struct{}{}
		<-gate
	}
	return s, ts.URL, gate, entered
}

// TestAdmissionQueueFullRejects: with one worker and no queue, a second
// concurrent query is shed immediately with the typed rejection, and
// the first still completes once unblocked.
func TestAdmissionQueueFullRejects(t *testing.T) {
	eng := testEngine(t, 1000)
	_, url, gate, entered := gateServer(t, eng, Config{Workers: 1, QueueDepth: -1})

	type outcome struct {
		st  int
		raw []byte
	}
	firstDone := make(chan outcome, 1)
	go func() {
		st, raw := call(t, "POST", url+"/v1/execute", executeRequest{SQL: vipQuery})
		firstDone <- outcome{st, raw}
	}()
	<-entered // first request holds the only worker slot

	st, raw := call(t, "POST", url+"/v1/execute", executeRequest{SQL: vipQuery})
	if st != http.StatusTooManyRequests {
		t.Fatalf("second query: %d %s, want 429", st, raw)
	}
	if got := errCode(t, raw); got != CodeRejected {
		t.Fatalf("second query code %q, want %q", got, CodeRejected)
	}

	close(gate)
	if out := <-firstDone; out.st != http.StatusOK {
		t.Fatalf("gated query after release: %d %s", out.st, out.raw)
	}
	stats := serverStats(t, url)
	if stats.Admission.Rejected != 1 || stats.Admission.Admitted != 1 {
		t.Fatalf("admission stats %+v; want admitted=1 rejected=1", stats.Admission)
	}
}

// TestAdmissionQueuedRequestRuns: with queue depth available, the
// overflow request waits instead of being rejected and runs once the
// slot frees up.
func TestAdmissionQueuedRequestRuns(t *testing.T) {
	eng := testEngine(t, 1000)
	_, url, gate, entered := gateServer(t, eng, Config{Workers: 1, QueueDepth: 4})

	var wg sync.WaitGroup
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, _ := call(t, "POST", url+"/v1/execute", executeRequest{SQL: vipQuery})
			results <- st
		}()
	}
	<-entered // one request executing; the other is queued or about to be
	close(gate)
	wg.Wait()
	close(results)
	for st := range results {
		if st != http.StatusOK {
			t.Fatalf("query finished with %d; want both 200", st)
		}
	}
	stats := serverStats(t, url)
	if stats.Admission.Admitted != 2 || stats.Admission.Rejected != 0 {
		t.Fatalf("admission stats %+v; want admitted=2 rejected=0", stats.Admission)
	}
}

// TestQueuedRequestHonoursDeadline: a request stuck in the admission
// queue gives up when its own deadline expires, as a typed timeout.
func TestQueuedRequestHonoursDeadline(t *testing.T) {
	eng := testEngine(t, 1000)
	_, url, gate, entered := gateServer(t, eng, Config{Workers: 1, QueueDepth: 4})

	blocked := make(chan struct{})
	go func() {
		call(t, "POST", url+"/v1/execute", executeRequest{SQL: vipQuery})
		close(blocked)
	}()
	<-entered

	st, raw := call(t, "POST", url+"/v1/execute",
		executeRequest{SQL: vipQuery, TimeoutMS: 20})
	if st != http.StatusGatewayTimeout {
		t.Fatalf("queued query: %d %s, want 504", st, raw)
	}
	if got := errCode(t, raw); got != CodeTimeout {
		t.Fatalf("queued query code %q, want %q", got, CodeTimeout)
	}
	close(gate)
	<-blocked
}

// TestGracefulShutdownDrains: Shutdown lets the in-flight query finish,
// refuses new work with the typed shutting-down error, and flips
// healthz to draining.
func TestGracefulShutdownDrains(t *testing.T) {
	eng := testEngine(t, 1000)
	s, url, gate, entered := gateServer(t, eng, Config{Workers: 2})

	type outcome struct {
		st  int
		raw []byte
	}
	inflight := make(chan outcome, 1)
	go func() {
		st, raw := call(t, "POST", url+"/v1/execute", executeRequest{SQL: vipQuery})
		inflight <- outcome{st, raw}
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Wait until the drain is observable, then pin the draining behavior.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := call(t, "GET", url+"/healthz", nil); st == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	st, raw := call(t, "POST", url+"/v1/execute", executeRequest{SQL: vipQuery})
	if st != http.StatusServiceUnavailable {
		t.Fatalf("execute during drain: %d %s, want 503", st, raw)
	}
	if got := errCode(t, raw); got != CodeShuttingDown {
		t.Fatalf("execute during drain code %q, want %q", got, CodeShuttingDown)
	}
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v while a query was still in flight", err)
	default:
	}

	close(gate)
	if out := <-inflight; out.st != http.StatusOK {
		t.Fatalf("in-flight query during drain: %d %s, want 200", out.st, out.raw)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestShutdownDeadlineExpires: if the drain context expires before
// in-flight work finishes, Shutdown reports it instead of hanging.
func TestShutdownDeadlineExpires(t *testing.T) {
	eng := testEngine(t, 1000)
	s, url, gate, entered := gateServer(t, eng, Config{Workers: 1})

	done := make(chan struct{})
	go func() {
		call(t, "POST", url+"/v1/execute", executeRequest{SQL: vipQuery})
		close(done)
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil with a query still gated")
	}
	close(gate)
	<-done
}
