package server

// Server-layer chaos: circuit-breaker trip and half-open recovery under
// a persistently failing index path, admission-site fault injection,
// and slow-log ring behavior under wraparound and concurrent scrapes.
// Like the engine-level suite in internal/fault, every scenario asserts
// correct rows or a typed error — never a silently wrong answer.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"minequery"
)

// chaosWire extends executeWire with the resilience fields.
type chaosWire struct {
	Rows       json.RawMessage `json:"rows"`
	RowCount   int             `json:"row_count"`
	AccessPath string          `json:"access_path"`
	Degraded   bool            `json:"degraded"`
	Fallback   bool            `json:"fallback"`
}

// seekKiller makes every index seek fail; with retries off the engine
// falls back to the baseline scan on each query, which is exactly the
// failure signal the breaker counts.
func seekKiller() *minequery.FaultInjector {
	return minequery.NewFaultInjector(1,
		minequery.FaultRule{Site: minequery.FaultSiteIndexSeek, EveryN: 1, Err: minequery.ErrInjected})
}

func TestBreakerTripsToDegradedMode(t *testing.T) {
	eng := testEngine(t, 6000)
	eng.SetRetryPolicy(minequery.RetryPolicy{MaxAttempts: 1})
	s, ts := testServer(t, eng, Config{BreakerThreshold: 3, BreakerCooldown: time.Hour})

	// Fault-free reference answer first.
	status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
	if status != http.StatusOK {
		t.Fatalf("reference execute: %d %s", status, raw)
	}
	ref := decode[chaosWire](t, raw)
	if ref.Degraded || ref.Fallback {
		t.Fatalf("reference run flagged degraded=%v fallback=%v", ref.Degraded, ref.Fallback)
	}

	eng.SetFaults(seekKiller())
	defer eng.SetFaults(nil)

	// Three fallback executions trip the customers circuit.
	for i := 0; i < 3; i++ {
		status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
		if status != http.StatusOK {
			t.Fatalf("execute %d under faults: %d %s", i, status, raw)
		}
		res := decode[chaosWire](t, raw)
		if !res.Fallback {
			t.Fatalf("execute %d: expected engine fallback under a dead index path (access=%s)", i, res.AccessPath)
		}
		if res.Degraded {
			t.Fatalf("execute %d: degraded before the breaker could have tripped", i)
		}
		if string(res.Rows) != string(ref.Rows) {
			t.Fatalf("execute %d: fallback rows differ from reference", i)
		}
	}
	if got := s.breaker.stateOf("customers"); got != "open" {
		t.Fatalf("breaker state after %d fallbacks = %q, want open", 3, got)
	}

	// While open, queries are shed to the degraded plan: same rows, no
	// index seeks, so the armed seek fault cannot even fire.
	for i := 0; i < 2; i++ {
		status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
		if status != http.StatusOK {
			t.Fatalf("degraded execute: %d %s", status, raw)
		}
		res := decode[chaosWire](t, raw)
		if !res.Degraded {
			t.Fatalf("open breaker did not shed execute %d (access=%s)", i, res.AccessPath)
		}
		if res.Fallback {
			t.Fatal("degraded plan should never need the fallback path")
		}
		if string(res.Rows) != string(ref.Rows) {
			t.Fatal("degraded rows differ from reference")
		}
	}

	st := s.breaker.stats()
	if st.Trips < 1 || st.Degraded < 2 || st.OpenTables != 1 {
		t.Fatalf("breaker stats = %+v, want >=1 trip, >=2 degraded, 1 open table", st)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	eng := testEngine(t, 6000)
	eng.SetRetryPolicy(minequery.RetryPolicy{MaxAttempts: 1})
	s, ts := testServer(t, eng, Config{BreakerThreshold: 2, BreakerCooldown: time.Minute})

	eng.SetFaults(seekKiller())
	for i := 0; i < 2; i++ {
		if status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery}); status != http.StatusOK {
			t.Fatalf("tripping execute: %d %s", status, raw)
		}
	}
	if got := s.breaker.stateOf("customers"); got != "open" {
		t.Fatalf("breaker = %q, want open", got)
	}

	// Heal the fault and jump past the cooldown: the next query becomes
	// the half-open probe, succeeds on the optimized plan, and closes
	// the circuit.
	eng.SetFaults(nil)
	s.breaker.setNow(func() time.Time { return time.Now().Add(2 * time.Minute) })

	status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
	if status != http.StatusOK {
		t.Fatalf("probe execute: %d %s", status, raw)
	}
	probe := decode[chaosWire](t, raw)
	if probe.Degraded || probe.Fallback {
		t.Fatalf("probe ran degraded=%v fallback=%v, want the optimized plan", probe.Degraded, probe.Fallback)
	}
	if got := s.breaker.stateOf("customers"); got != "closed" {
		t.Fatalf("breaker after successful probe = %q, want closed", got)
	}
	res := decode[chaosWire](t, raw)
	if res.RowCount == 0 {
		t.Fatal("probe returned no rows")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	eng := testEngine(t, 6000)
	eng.SetRetryPolicy(minequery.RetryPolicy{MaxAttempts: 1})
	s, ts := testServer(t, eng, Config{BreakerThreshold: 2, BreakerCooldown: time.Minute})

	eng.SetFaults(seekKiller())
	defer eng.SetFaults(nil)
	for i := 0; i < 2; i++ {
		call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
	}
	trips := s.breaker.stats().Trips

	// Past cooldown with the fault still armed: the probe fails and the
	// circuit re-opens, counting another trip.
	s.breaker.setNow(func() time.Time { return time.Now().Add(2 * time.Minute) })
	status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
	if status != http.StatusOK {
		t.Fatalf("probe execute: %d %s", status, raw)
	}
	if got := s.breaker.stateOf("customers"); got != "open" {
		t.Fatalf("breaker after failed probe = %q, want open", got)
	}
	if got := s.breaker.stats().Trips; got != trips+1 {
		t.Fatalf("trips after failed probe = %d, want %d", got, trips+1)
	}
}

func TestAdmissionFaultInjection(t *testing.T) {
	eng := testEngine(t, 8000)
	in := minequery.NewFaultInjector(1,
		minequery.FaultRule{Site: minequery.FaultSiteAdmission, OnHit: 1, Err: minequery.ErrInjected, Limit: 1})
	_, ts := testServer(t, eng, Config{Faults: in})

	status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("injected admission fault: status %d %s, want 503", status, raw)
	}
	if code := errCode(t, raw); code != CodeTransient {
		t.Fatalf("error code = %q, want %q", code, CodeTransient)
	}

	// The rule's Limit is spent; the server recovers on the next query.
	status, raw = call(t, http.MethodPost, ts.URL+"/v1/execute", map[string]any{"sql": vipQuery})
	if status != http.StatusOK {
		t.Fatalf("post-fault execute: %d %s", status, raw)
	}
	if res := decode[chaosWire](t, raw); res.RowCount == 0 {
		t.Fatal("post-fault execute returned no rows")
	}
}

func TestSlowLogWraparound(t *testing.T) {
	l := newSlowLog(4)
	for i := 0; i < 11; i++ {
		l.record(slowLogEntry{SQL: fmt.Sprintf("q%d", i)})
	}
	if got := l.size(); got != 4 {
		t.Fatalf("size = %d, want 4 after wraparound", got)
	}
	if got := l.total.Load(); got != 11 {
		t.Fatalf("total = %d, want 11", got)
	}
	got := l.entries()
	want := []string{"q10", "q9", "q8", "q7"} // newest first
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.SQL != want[i] {
			t.Fatalf("entries[%d].SQL = %q, want %q (newest-first window)", i, e.SQL, want[i])
		}
	}
}

func TestSlowLogConcurrentRecordAndScrape(t *testing.T) {
	l := newSlowLog(8)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				l.record(slowLogEntry{SQL: fmt.Sprintf("w%d-%d", w, i), Rows: i})
			}
		}(w)
	}
	// Scrape continuously while writers wrap the ring; the race detector
	// owns the locking assertions, we just check structural sanity.
	for i := 0; i < 200; i++ {
		ents := l.entries()
		if len(ents) > 8 {
			t.Errorf("scrape %d: %d entries from a ring of 8", i, len(ents))
		}
		_ = l.size()
	}
	cancel()
	wg.Wait()
	if l.total.Load() < int64(l.size()) {
		t.Fatal("total fell below held entries")
	}
}
