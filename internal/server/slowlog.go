package server

import (
	"sync"
	"sync/atomic"
	"time"
)

// slowLogEntry is one recorded slow query. SQL is the normalized form
// (never the raw request text, which may differ in literals' spelling
// only), and Analyze carries the per-operator actuals rendered from the
// query's AnalyzeReport when instrumentation produced one.
type slowLogEntry struct {
	Time          time.Time `json:"time"`
	SQL           string    `json:"sql"`
	AccessPath    string    `json:"access_path"`
	DurationUS    int64     `json:"duration_us"`
	Rows          int       `json:"rows"`
	SeqPageReads  int64     `json:"seq_page_reads"`
	RandPageReads int64     `json:"rand_page_reads"`
	TupleReads    int64     `json:"tuple_reads"`
	CostUnits     float64   `json:"cost_units"`
	Plan          string    `json:"plan"`
	Analyze       string    `json:"analyze,omitempty"`
}

// slowLog is a fixed-size ring of the most recent slow queries. Writes
// overwrite the oldest entry once full; total counts every record ever
// made (the monotonic series behind minequeryd_slowlog_entries_total).
type slowLog struct {
	mu   sync.Mutex
	buf  []slowLogEntry
	next int // next write position
	n    int // entries currently held

	total atomic.Int64
}

func newSlowLog(size int) *slowLog {
	if size <= 0 {
		size = 128
	}
	return &slowLog{buf: make([]slowLogEntry, size)}
}

func (l *slowLog) record(e slowLogEntry) {
	l.total.Add(1)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// entries returns the held entries newest-first.
func (l *slowLog) entries() []slowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]slowLogEntry, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}

func (l *slowLog) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
