package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"minequery"
)

// testEngine builds a customers fixture with a rare "vip" segment and
// one trained naive Bayes model.
func testEngine(t testing.TB, rows int) *minequery.Engine {
	t.Helper()
	eng := minequery.New()
	if err := eng.CreateTable("customers", minequery.MustSchema(
		minequery.Column{Name: "id", Kind: minequery.KindInt},
		minequery.Column{Name: "age", Kind: minequery.KindInt},
		minequery.Column{Name: "income", Kind: minequery.KindInt},
		minequery.Column{Name: "segment", Kind: minequery.KindString},
	)); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	batch := make([]minequery.Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		age := int64(r.Intn(10))
		income := int64(r.Intn(8))
		seg := "regular"
		switch {
		case age == 0 && income == 7:
			seg = "vip"
		case income <= 1:
			seg = "budget"
		}
		batch = append(batch, minequery.Tuple{
			minequery.Int(int64(i)), minequery.Int(age), minequery.Int(income), minequery.Str(seg),
		})
	}
	if err := eng.InsertBatch("customers", batch); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("customers"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.TrainNaiveBayes("segmodel", "segment", "customers",
		[]string{"age", "income"}, "segment", minequery.BayesOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.CreateIndex("ix_age_income", "customers", "age", "income"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Analyze("customers"); err != nil {
		t.Fatal(err)
	}
	return eng
}

const vipQuery = `SELECT id, age, income FROM customers
	PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
	WHERE m.segment = 'vip'`

// testServer starts the server over httptest and tears it down with
// the test.
func testServer(t testing.TB, eng *minequery.Engine, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// call POSTs a JSON body (or GETs when body is nil) and returns status
// and raw response.
func call(t testing.TB, method, url string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func decode[T any](t testing.TB, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
	return v
}

// executeWire is executeResponse with raw rows, so tests can compare
// result bytes exactly.
type executeWire struct {
	StatementID       string          `json:"statement_id"`
	StatementCacheHit bool            `json:"statement_cache_hit"`
	Columns           []string        `json:"columns"`
	Rows              json.RawMessage `json:"rows"`
	RowCount          int             `json:"row_count"`
	AccessPath        string          `json:"access_path"`
}

func errCode(t testing.TB, raw []byte) string {
	t.Helper()
	v := decode[map[string]errorBody](t, raw)
	return v["error"].Code
}

func TestPrepareExecuteRoundTrip(t *testing.T) {
	eng := testEngine(t, 8000)
	_, ts := testServer(t, eng, Config{})

	// Engine-side reference result, computed before the server touches
	// anything. rowsToJSON + Marshal is byte-for-byte what the server
	// sends in "rows".
	want, err := eng.Query(context.Background(), vipQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("fixture must return rows")
	}
	wantRows, err := json.Marshal(rowsToJSON(want.Rows))
	if err != nil {
		t.Fatal(err)
	}

	st, raw := call(t, "POST", ts.URL+"/v1/prepare", prepareRequest{SQL: vipQuery})
	if st != http.StatusOK {
		t.Fatalf("prepare: %d %s", st, raw)
	}
	prep := decode[prepareResponse](t, raw)
	if prep.Cached {
		t.Fatal("first prepare must not be cached")
	}
	if prep.StatementID == "" {
		t.Fatal("no statement id")
	}

	// Same SQL with different spelling hits the normalized key.
	respelled := strings.ToLower(strings.Join(strings.Fields(vipQuery), " "))
	st, raw = call(t, "POST", ts.URL+"/v1/prepare", prepareRequest{SQL: respelled})
	if st != http.StatusOK {
		t.Fatalf("re-prepare: %d %s", st, raw)
	}
	prep2 := decode[prepareResponse](t, raw)
	if !prep2.Cached || prep2.StatementID != prep.StatementID {
		t.Fatalf("respelled prepare: cached=%v id=%s, want cached reuse of %s",
			prep2.Cached, prep2.StatementID, prep.StatementID)
	}

	// Execute by statement id at DOP 1 and DOP 4 via sessions: results
	// must be byte-identical to the engine's one-shot path.
	for _, dop := range []int{1, 4} {
		_, raw = call(t, "POST", ts.URL+"/v1/session", nil)
		sess := decode[sessionResponse](t, raw)
		st, raw = call(t, "POST", ts.URL+"/v1/session/"+sess.SessionID+"/settings",
			settingsRequest{DOP: &dop})
		if st != http.StatusOK {
			t.Fatalf("settings: %d %s", st, raw)
		}
		st, raw = call(t, "POST", ts.URL+"/v1/execute",
			executeRequest{StatementID: prep.StatementID, SessionID: sess.SessionID})
		if st != http.StatusOK {
			t.Fatalf("execute dop=%d: %d %s", dop, st, raw)
		}
		got := decode[executeWire](t, raw)
		if !got.StatementCacheHit {
			t.Fatalf("dop=%d: executed prepared statement did not reuse the plan", dop)
		}
		if !bytes.Equal(bytes.TrimSpace(got.Rows), wantRows) {
			t.Fatalf("dop=%d: rows differ from engine result", dop)
		}
		if got.RowCount != len(want.Rows) {
			t.Fatalf("dop=%d: row_count %d, want %d", dop, got.RowCount, len(want.Rows))
		}
	}

	// Execute-by-SQL auto-registers and, on repeat, reuses the plan.
	st, raw = call(t, "POST", ts.URL+"/v1/execute", executeRequest{SQL: vipQuery})
	if st != http.StatusOK {
		t.Fatalf("execute by sql: %d %s", st, raw)
	}
	if got := decode[executeWire](t, raw); !got.StatementCacheHit {
		t.Fatal("execute-by-sql should have found the prepared plan")
	}
}

func TestRepeatedExecuteSkipsReplanning(t *testing.T) {
	eng := testEngine(t, 4000)
	s, ts := testServer(t, eng, Config{})

	st, raw := call(t, "POST", ts.URL+"/v1/prepare", prepareRequest{SQL: vipQuery})
	if st != http.StatusOK {
		t.Fatalf("prepare: %d %s", st, raw)
	}
	prep := decode[prepareResponse](t, raw)
	base := s.reg.stats()
	envBase := s.env.stats()

	const n = 5
	for i := 0; i < n; i++ {
		st, raw = call(t, "POST", ts.URL+"/v1/execute", executeRequest{StatementID: prep.StatementID})
		if st != http.StatusOK {
			t.Fatalf("execute %d: %d %s", i, st, raw)
		}
		if got := decode[executeWire](t, raw); !got.StatementCacheHit {
			t.Fatalf("execute %d missed the statement cache", i)
		}
	}
	now := s.reg.stats()
	if now.Hits-base.Hits != n {
		t.Fatalf("statement hits rose by %d, want %d", now.Hits-base.Hits, n)
	}
	if now.Misses != base.Misses || now.Reprepares != base.Reprepares {
		t.Fatalf("repeated execution re-planned: misses %d→%d reprepares %d→%d",
			base.Misses, now.Misses, base.Reprepares, now.Reprepares)
	}
	// Envelope derivation ran at most once (during prepare); repeated
	// executes never touch the envelope cache again.
	if env := s.env.stats(); env.Misses != envBase.Misses {
		t.Fatalf("repeated execution re-derived envelopes (misses %d→%d)", envBase.Misses, env.Misses)
	}
}

func TestEnvelopeCacheSharedAcrossStatements(t *testing.T) {
	eng := testEngine(t, 4000)
	s, ts := testServer(t, eng, Config{})

	if st, raw := call(t, "POST", ts.URL+"/v1/prepare", prepareRequest{SQL: vipQuery}); st != http.StatusOK {
		t.Fatalf("prepare: %d %s", st, raw)
	}
	after1 := s.env.stats()
	if after1.Misses == 0 {
		t.Fatal("first prepare should populate the envelope cache")
	}
	// A different statement over the same (model, class) reuses the
	// derived envelope: no new misses.
	other := `SELECT id FROM customers
		PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
		WHERE m.segment = 'vip' AND income > 3`
	if st, raw := call(t, "POST", ts.URL+"/v1/prepare", prepareRequest{SQL: other}); st != http.StatusOK {
		t.Fatalf("prepare other: %d %s", st, raw)
	}
	after2 := s.env.stats()
	if after2.Hits <= after1.Hits {
		t.Fatal("second statement with the same class set did not hit the envelope cache")
	}
	if after2.Misses != after1.Misses {
		t.Fatalf("second statement re-derived the envelope (misses %d→%d)", after1.Misses, after2.Misses)
	}
}

func TestSessionForceSeqScan(t *testing.T) {
	eng := testEngine(t, 8000)
	_, ts := testServer(t, eng, Config{})

	_, raw := call(t, "POST", ts.URL+"/v1/session", nil)
	sess := decode[sessionResponse](t, raw)
	force := "seqscan"
	if st, raw := call(t, "POST", ts.URL+"/v1/session/"+sess.SessionID+"/settings",
		settingsRequest{ForcePath: &force}); st != http.StatusOK {
		t.Fatalf("settings: %d %s", st, raw)
	}

	st, raw := call(t, "POST", ts.URL+"/v1/execute",
		executeRequest{SQL: vipQuery, SessionID: sess.SessionID})
	if st != http.StatusOK {
		t.Fatalf("execute: %d %s", st, raw)
	}
	forced := decode[executeWire](t, raw)
	if forced.AccessPath != "seqscan" {
		t.Fatalf("forced access path = %q, want seqscan", forced.AccessPath)
	}

	// Unforced execution of the same SQL picks the index and returns
	// the same rows: the hint changes the plan, never the answer.
	st, raw = call(t, "POST", ts.URL+"/v1/execute", executeRequest{SQL: vipQuery})
	if st != http.StatusOK {
		t.Fatalf("execute unforced: %d %s", st, raw)
	}
	free := decode[executeWire](t, raw)
	if free.AccessPath == "seqscan" {
		t.Fatal("fixture must favor an index path for the hint to matter")
	}
	if !bytes.Equal(free.Rows, forced.Rows) {
		t.Fatal("forced seqscan changed the result")
	}
	if free.StatementID == forced.StatementID {
		t.Fatal("hinted and unhinted plans must be distinct registry entries")
	}
}

func TestStatsEndpoint(t *testing.T) {
	eng := testEngine(t, 2000)
	_, ts := testServer(t, eng, Config{})
	if st, raw := call(t, "POST", ts.URL+"/v1/execute", executeRequest{SQL: vipQuery}); st != http.StatusOK {
		t.Fatalf("execute: %d %s", st, raw)
	}
	st, raw := call(t, "GET", ts.URL+"/v1/stats", nil)
	if st != http.StatusOK {
		t.Fatalf("stats: %d %s", st, raw)
	}
	stats := decode[statsResponse](t, raw)
	if stats.Queries != 1 {
		t.Fatalf("queries = %d, want 1", stats.Queries)
	}
	if stats.Prepared.Misses == 0 {
		t.Fatal("prepared.misses must count the first plan build")
	}
	if stats.CatalogEpoch == 0 {
		t.Fatal("catalog epoch should be nonzero after fixture setup")
	}
	if stats.Admission.Workers <= 0 {
		t.Fatal("admission.workers must report the pool size")
	}
}

func TestBadRequests(t *testing.T) {
	eng := testEngine(t, 500)
	_, ts := testServer(t, eng, Config{})
	cases := []struct {
		name string
		body executeRequest
		code string
	}{
		{"neither sql nor id", executeRequest{}, CodeBadRequest},
		{"both sql and id", executeRequest{SQL: "SELECT id FROM customers", StatementID: "q1"}, CodeBadRequest},
		{"unknown statement", executeRequest{StatementID: "q999"}, CodeNotFound},
		{"unknown session", executeRequest{SQL: "SELECT id FROM customers", SessionID: "s999"}, CodeNotFound},
		{"sql parse error", executeRequest{SQL: "SELEC id"}, CodeParse},
		{"unknown table", executeRequest{SQL: "SELECT id FROM nope"}, CodeUnknownTable},
	}
	for _, tc := range cases {
		st, raw := call(t, "POST", ts.URL+"/v1/execute", tc.body)
		if st == http.StatusOK {
			t.Fatalf("%s: got 200", tc.name)
		}
		if got := errCode(t, raw); got != tc.code {
			t.Fatalf("%s: code %q (status %d), want %q", tc.name, got, st, tc.code)
		}
	}
	// Session delete round-trip.
	_, raw := call(t, "POST", ts.URL+"/v1/session", nil)
	sess := decode[sessionResponse](t, raw)
	if st, _ := call(t, "DELETE", ts.URL+"/v1/session/"+sess.SessionID, nil); st != http.StatusOK {
		t.Fatalf("delete session: %d", st)
	}
	if st, raw := call(t, "DELETE", ts.URL+"/v1/session/"+sess.SessionID, nil); st != http.StatusNotFound {
		t.Fatalf("double delete: %d %s", st, raw)
	}
	bad := "index"
	_, raw = call(t, "POST", ts.URL+"/v1/session", nil)
	sess = decode[sessionResponse](t, raw)
	if st, _ := call(t, "POST", ts.URL+"/v1/session/"+sess.SessionID+"/settings",
		settingsRequest{ForcePath: &bad}); st != http.StatusBadRequest {
		t.Fatalf("bad force_path accepted: %d", st)
	}
}

// TestSessionTimeoutApplies pins the per-session timeout: a 1ms budget
// on a query that needs longer must yield a typed timeout.
func TestSessionTimeoutApplies(t *testing.T) {
	eng := testEngine(t, 2000)
	s, ts := testServer(t, eng, Config{})
	// The request deadline starts ticking in the handler before admission;
	// holding the worker past the 1ms budget makes the expiry deterministic
	// instead of racing the scan against the runtime timer. Mid-scan
	// cancellation itself is pinned by the exec-layer deadline tests.
	s.execHook = func() { time.Sleep(20 * time.Millisecond) }
	_, raw := call(t, "POST", ts.URL+"/v1/session", nil)
	sess := decode[sessionResponse](t, raw)
	var ms int64 = 1
	force := "seqscan"
	if st, raw := call(t, "POST", ts.URL+"/v1/session/"+sess.SessionID+"/settings",
		settingsRequest{TimeoutMS: &ms, ForcePath: &force}); st != http.StatusOK {
		t.Fatalf("settings: %d %s", st, raw)
	}
	st, raw := call(t, "POST", ts.URL+"/v1/execute",
		executeRequest{SQL: vipQuery, SessionID: sess.SessionID})
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status %d %s, want 504", st, raw)
	}
	if got := errCode(t, raw); got != CodeTimeout {
		t.Fatalf("code %q, want %q", got, CodeTimeout)
	}
}
