package server

import (
	"context"
	"net/http"
	"time"

	"minequery"
)

// Shard endpoints: the daemon surface a cluster coordinator drives.
// /v1/shard-exec is /v1/execute minus sessions plus an optional catalog
// epoch guard; /v1/shard-info summarizes the catalog (epoch, tables,
// model fingerprints) so a coordinator can prove its envelope-driven
// shard pruning still sound against this node's models.

type shardExecRequest struct {
	SQL         string `json:"sql"`
	StatementID string `json:"statement_id"`
	// ExpectedEpoch, when present, guards the execution: if this node's
	// catalog epoch differs, the request is rejected with code
	// "epoch_mismatch" (409) before running, signalling the coordinator
	// to resync this node's model fingerprints. Absent means unguarded.
	ExpectedEpoch *int64 `json:"expected_epoch"`
	TimeoutMS     int64  `json:"timeout_ms"`
	DOP           int    `json:"dop"`
	// AggPartial asks for partial-aggregate execution: instead of
	// finalized rows, the response carries the un-finalized per-group
	// accumulator state (agg_partial), which the coordinator merges
	// across shards — in any order — and finalizes once. Only valid for
	// GROUP BY / aggregate statements.
	AggPartial bool `json:"agg_partial,omitempty"`
}

type shardExecResponse struct {
	executeResponse
	// Epoch is this node's catalog epoch observed at admission; the
	// coordinator folds it into its per-shard state.
	Epoch int64 `json:"epoch"`
	// AggPartial is this shard's partial aggregate state (requests with
	// agg_partial set; rows is then empty and row_count 0).
	AggPartial *minequery.AggWire `json:"agg_partial,omitempty"`
}

type shardModelBody struct {
	Name          string   `json:"name"`
	Version       int64    `json:"version"`
	Fingerprint   string   `json:"fingerprint"`
	PredictColumn string   `json:"predict_column"`
	Classes       []string `json:"classes"`
}

type shardInfoResponse struct {
	Epoch  int64            `json:"epoch"`
	Tables []string         `json:"tables"`
	Models []shardModelBody `json:"models"`
}

func (s *Server) handleShardExec(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	var req shardExecRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if (req.SQL == "") == (req.StatementID == "") {
		s.writeError(w, errBadRequest("exactly one of sql or statement_id is required"))
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.adm.release()
	if s.execHook != nil {
		s.execHook()
	}
	if err := s.cfg.Faults.Hit(minequery.FaultSiteAdmission); err != nil {
		s.writeError(w, err)
		return
	}

	epoch := s.eng.CatalogEpoch()
	if req.ExpectedEpoch != nil && *req.ExpectedEpoch != epoch {
		s.writeError(w, &apiError{code: CodeEpochMismatch,
			msg: "catalog epoch moved since the coordinator planned"})
		return
	}

	var ent *stmtEntry
	if req.StatementID != "" {
		var ok bool
		if ent, ok = s.reg.byStatementID(req.StatementID); !ok {
			s.writeError(w, errNotFound("no statement "+req.StatementID))
			return
		}
	} else {
		if ent, _, err = s.reg.lookup(req.SQL, false); err != nil {
			s.writeError(w, err)
			return
		}
	}
	var opts []minequery.QueryOption
	if req.DOP > 0 {
		opts = append(opts, minequery.WithDOP(req.DOP))
	}
	if req.AggPartial {
		opts = append(opts, minequery.WithPartialAggs())
	}
	res, reused, degraded, err := s.executeGuarded(ctx, ent, opts)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.queries.Add(1)
	s.maybeRecordSlow(ent.norm, res)
	writeJSON(w, http.StatusOK, shardExecResponse{
		executeResponse: executeResponse{
			StatementID:       ent.id,
			StatementCacheHit: reused,
			Columns:           res.ColumnNames(),
			Schema:            schemaToJSON(res.Columns),
			Rows:              rowsToJSON(res.Rows),
			RowCount:          len(res.Rows),
			Plan:              res.Plan,
			AccessPath:        res.AccessPath,
			PlanChanged:       res.PlanChanged,
			EstSelectivity:    res.EstSelectivity,
			Degraded:          degraded,
			Fallback:          res.Fallback,
			Retries:           res.Retries,
			Stats: execStatsBody{
				DurationUS:    res.Stats.Duration.Microseconds(),
				SeqPageReads:  res.Stats.SeqPageReads,
				RandPageReads: res.Stats.RandPageReads,
				TupleReads:    res.Stats.TupleReads,
				CostUnits:     res.Stats.CostUnits,
			},
		},
		Epoch:      epoch,
		AggPartial: res.PartialAgg,
	})
}

func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	summaries := s.eng.ModelSummaries()
	models := make([]shardModelBody, len(summaries))
	for i, m := range summaries {
		models[i] = shardModelBody{
			Name:          m.Name,
			Version:       m.Version,
			Fingerprint:   m.Fingerprint,
			PredictColumn: m.PredictColumn,
			Classes:       m.Classes,
		}
	}
	writeJSON(w, http.StatusOK, shardInfoResponse{
		Epoch:  s.eng.CatalogEpoch(),
		Tables: s.eng.TableNames(),
		Models: models,
	})
}
