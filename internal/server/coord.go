package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"minequery"
	"minequery/internal/cluster"
)

// CoordServer is minequeryd's coordinator mode: the same HTTP/JSON
// dialect as the single-node server (execute, prepare,
// explain-analyze, stats, metrics, healthz) served by a
// cluster.Coordinator fanning out over a shard map, plus GET
// /v1/cluster exposing the map, per-shard breaker state, and
// last-observed epochs.
type CoordServer struct {
	coord   *cluster.Coordinator
	mux     *http.ServeMux
	metrics *minequery.MetricsRegistry
	timeout time.Duration
	started time.Time

	mu      sync.Mutex
	closing bool
	wg      sync.WaitGroup

	// queries/errors mirror the single-node counters at the request
	// level (the coordinator's own counters count shard slots).
}

// NewCoord wires the coordinator HTTP surface. defaultTimeout bounds a
// whole fan-out when the request does not set timeout_ms (<=0: 30s).
func NewCoord(coord *cluster.Coordinator, defaultTimeout time.Duration) *CoordServer {
	if defaultTimeout <= 0 {
		defaultTimeout = 30 * time.Second
	}
	cs := &CoordServer{
		coord:   coord,
		mux:     http.NewServeMux(),
		timeout: defaultTimeout,
		started: time.Now(),
	}
	cs.metrics = cs.buildMetrics()
	cs.mux.HandleFunc("POST /v1/execute", cs.handleExecute)
	cs.mux.HandleFunc("POST /v1/exec", cs.handleExec)
	cs.mux.HandleFunc("POST /v1/prepare", cs.handlePrepare)
	cs.mux.HandleFunc("POST /v1/explain-analyze", cs.handleExplainAnalyze)
	cs.mux.HandleFunc("GET /v1/cluster", cs.handleCluster)
	cs.mux.HandleFunc("GET /v1/stats", cs.handleStats)
	cs.mux.HandleFunc("GET /metrics", cs.handleMetrics)
	cs.mux.HandleFunc("GET /healthz", cs.handleHealthz)
	return cs
}

// Handler returns the HTTP entry point.
func (cs *CoordServer) Handler() http.Handler { return cs.mux }

// Shutdown stops admitting requests and drains in-flight fan-outs.
func (cs *CoordServer) Shutdown(ctx context.Context) error {
	cs.mu.Lock()
	cs.closing = true
	cs.mu.Unlock()
	done := make(chan struct{})
	go func() {
		cs.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (cs *CoordServer) beginRequest() (func(), error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.closing {
		return nil, errShuttingDown
	}
	cs.wg.Add(1)
	return cs.wg.Done, nil
}

func (cs *CoordServer) writeError(w http.ResponseWriter, err error) {
	code, status := classify(err)
	writeJSON(w, status, map[string]errorBody{"error": {Code: code, Message: err.Error()}})
}

// ---- wire types ----

type coordExecuteRequest struct {
	SQL         string `json:"sql"`
	StatementID string `json:"statement_id"`
	TimeoutMS   int64  `json:"timeout_ms"`
	DOP         int    `json:"dop"`
}

type coordShardStatsBody struct {
	Planned  int `json:"planned"`
	Pruned   int `json:"pruned"`
	Queried  int `json:"queried"`
	Degraded int `json:"degraded"`
}

type coordExecuteResponse struct {
	StatementID string   `json:"statement_id,omitempty"`
	Columns     []string `json:"columns"`
	// Schema self-describes the output columns exactly as the
	// single-node daemon's "schema" field does; old clients ignore it.
	Schema   []cluster.ColumnMeta `json:"schema"`
	Rows     [][]any              `json:"rows"`
	RowCount int                  `json:"row_count"`
	Shards   coordShardStatsBody  `json:"shards"`
	// AggMerges counts per-shard partial aggregate states merged at the
	// coordinator (0 for non-aggregate statements).
	AggMerges int64 `json:"agg_partial_merges,omitempty"`
	// Degraded: AllowPartial accepted missing shards; the rows are a
	// sound subset and MissingShards + Notes say exactly what is absent.
	Degraded      bool     `json:"degraded"`
	MissingShards []int    `json:"missing_shards,omitempty"`
	Notes         []string `json:"notes,omitempty"`
	Retries       int64    `json:"retries"`
	Epoch         int64    `json:"epoch"`
}

type coordExplainResponse struct {
	Analyze string `json:"analyze"`
}

type coordClusterResponse struct {
	Table    string                 `json:"table"`
	Column   string                 `json:"column"`
	Mode     string                 `json:"mode"`
	Shards   []cluster.ShardStatus  `json:"shards"`
	Prepared []cluster.PreparedInfo `json:"prepared,omitempty"`
}

type coordStatsResponse struct {
	UptimeMS    int64            `json:"uptime_ms"`
	Counters    cluster.Counters `json:"counters"`
	BreakerOpen int              `json:"breaker_open"`
	Trips       int64            `json:"breaker_trips"`
}

// ---- handlers ----

func (cs *CoordServer) handleExecute(w http.ResponseWriter, r *http.Request) {
	done, err := cs.beginRequest()
	if err != nil {
		cs.writeError(w, err)
		return
	}
	defer done()
	var req coordExecuteRequest
	if err := decodeBody(r, &req); err != nil {
		cs.writeError(w, err)
		return
	}
	if (req.SQL == "") == (req.StatementID == "") {
		cs.writeError(w, errBadRequest("exactly one of sql or statement_id is required"))
		return
	}
	timeout := cs.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := cs.coord.Execute(ctx, cluster.Request{
		SQL:         req.SQL,
		StatementID: req.StatementID,
		DOP:         req.DOP,
	})
	if err != nil {
		cs.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, coordExecuteResponse{
		StatementID: res.StatementID,
		Columns:     res.Columns,
		Schema:      res.Schema,
		Rows:        res.Rows,
		RowCount:    len(res.Rows),
		AggMerges:   res.AggMerges,
		Shards: coordShardStatsBody{
			Planned:  res.ShardStats.Planned,
			Pruned:   res.ShardStats.Pruned,
			Queried:  res.ShardStats.Queried,
			Degraded: res.ShardStats.Degraded,
		},
		Degraded:      res.Degraded,
		MissingShards: res.MissingShards,
		Notes:         res.Notes,
		Retries:       res.Retries,
		Epoch:         res.Epoch,
	})
}

// handleExec routes one write statement across the fleet: INSERT rows
// to their owning shards by the shard map, UPDATE/DELETE/CREATE MODEL
// broadcast to every shard.
func (cs *CoordServer) handleExec(w http.ResponseWriter, r *http.Request) {
	done, err := cs.beginRequest()
	if err != nil {
		cs.writeError(w, err)
		return
	}
	defer done()
	var req execRequest
	if err := decodeBody(r, &req); err != nil {
		cs.writeError(w, err)
		return
	}
	if req.SQL == "" {
		cs.writeError(w, errBadRequest("sql is required"))
		return
	}
	timeout := cs.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	res, err := cs.coord.Exec(ctx, req.SQL)
	if err != nil {
		cs.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (cs *CoordServer) handlePrepare(w http.ResponseWriter, r *http.Request) {
	done, err := cs.beginRequest()
	if err != nil {
		cs.writeError(w, err)
		return
	}
	defer done()
	var req prepareRequest
	if err := decodeBody(r, &req); err != nil {
		cs.writeError(w, err)
		return
	}
	if req.SQL == "" {
		cs.writeError(w, errBadRequest("sql is required"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), cs.timeout)
	defer cancel()
	info, err := cs.coord.Prepare(ctx, req.SQL)
	if err != nil {
		cs.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (cs *CoordServer) handleExplainAnalyze(w http.ResponseWriter, r *http.Request) {
	done, err := cs.beginRequest()
	if err != nil {
		cs.writeError(w, err)
		return
	}
	defer done()
	var req explainAnalyzeRequest
	if err := decodeBody(r, &req); err != nil {
		cs.writeError(w, err)
		return
	}
	if req.SQL == "" {
		cs.writeError(w, errBadRequest("sql is required"))
		return
	}
	timeout := cs.timeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	report, err := cs.coord.ExplainAnalyze(ctx, req.SQL)
	if err != nil {
		cs.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, coordExplainResponse{Analyze: report})
}

func (cs *CoordServer) handleCluster(w http.ResponseWriter, r *http.Request) {
	m := cs.coord.Map()
	writeJSON(w, http.StatusOK, coordClusterResponse{
		Table:    m.Table,
		Column:   m.Column,
		Mode:     string(m.Mode),
		Shards:   cs.coord.ShardStatuses(),
		Prepared: cs.coord.Statements(),
	})
}

func (cs *CoordServer) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, coordStatsResponse{
		UptimeMS:    time.Since(cs.started).Milliseconds(),
		Counters:    cs.coord.Counters(),
		BreakerOpen: cs.coord.BreakerOpen(),
		Trips:       cs.coord.BreakerTrips(),
	})
}

func (cs *CoordServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cs.mu.Lock()
	closing := cs.closing
	cs.mu.Unlock()
	if closing {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the minequery_shard_* series; like the
// single-node scrape endpoint it skips the drain guard.
func (cs *CoordServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = cs.metrics.WritePrometheus(w)
}

// buildMetrics bridges the coordinator's counters into frozen
// minequery_shard_* series (checked by cmd/metricslint against the
// cluster required-series list).
func (cs *CoordServer) buildMetrics() *minequery.MetricsRegistry {
	reg := minequery.NewMetricsRegistry()
	c := func(f func(cluster.Counters) int64) func() float64 {
		return func() float64 { return float64(f(cs.coord.Counters())) }
	}
	reg.CounterFunc("minequery_coord_queries_total",
		"Queries executed by the coordinator (fan-outs, not per-shard requests).",
		c(func(x cluster.Counters) int64 { return x.Queries }))
	reg.CounterFunc("minequery_shard_planned_total",
		"Shard slots considered across all coordinator queries (queries x shards).",
		c(func(x cluster.Counters) int64 { return x.Planned }))
	reg.CounterFunc("minequery_shard_pruned_total",
		"Shard round-trips skipped because the shard's key range is provably disjoint from the (envelope-rewritten) predicate.",
		c(func(x cluster.Counters) int64 { return x.Pruned }))
	reg.CounterFunc("minequery_shard_queried_total",
		"Shard round-trips actually performed.",
		c(func(x cluster.Counters) int64 { return x.Queried }))
	reg.CounterFunc("minequery_shard_degraded_total",
		"Shard slots answered as missing in an AllowPartial degraded result.",
		c(func(x cluster.Counters) int64 { return x.Degraded }))
	reg.CounterFunc("minequery_shard_errors_total",
		"Per-shard availability failures (connect, deadline, exhausted retries, open breaker).",
		c(func(x cluster.Counters) int64 { return x.Errors }))
	reg.CounterFunc("minequery_shard_retries_total",
		"Per-shard transient retries performed by the coordinator.",
		c(func(x cluster.Counters) int64 { return x.Retries }))
	reg.CounterFunc("minequery_shard_replans_total",
		"Epoch-mismatch / stale-plan recovery rounds (fleet-level plan invalidation).",
		c(func(x cluster.Counters) int64 { return x.Replans }))
	reg.GaugeFunc("minequery_shard_breaker_open",
		"Remote shards whose circuit breaker is currently open or half-open.",
		func() float64 { return float64(cs.coord.BreakerOpen()) })
	reg.CounterFunc("minequery_shard_breaker_trips_total",
		"Remote circuit-breaker trips.",
		func() float64 { return float64(cs.coord.BreakerTrips()) })
	return reg
}
