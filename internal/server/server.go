package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"minequery"
	"minequery/internal/sqlparse"
)

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// Workers bounds concurrently executing queries (default: NumCPU).
	Workers int
	// QueueDepth bounds queries waiting for a worker slot; arrivals
	// beyond workers+queue are rejected with code "rejected"
	// (default 32).
	QueueDepth int
	// DefaultTimeout is the per-query deadline when neither the session
	// nor the request sets one (default 30s).
	DefaultTimeout time.Duration
	// MaxStatements bounds the prepared-statement registry (default 256,
	// FIFO eviction).
	MaxStatements int
	// EnvelopeCacheSize bounds the shared envelope cache (default 1024
	// entries, FIFO eviction).
	EnvelopeCacheSize int
	// SlowQueryThreshold is the duration at or above which a completed
	// query is recorded in the slow-query log served at /v1/slowlog
	// (default 250ms; negative disables recording).
	SlowQueryThreshold time.Duration
	// SlowLogSize bounds the slow-query ring buffer (default 128
	// entries; oldest overwritten first).
	SlowLogSize int
	// BreakerThreshold is the consecutive index-path failure count that
	// trips a table's circuit breaker, shedding its queries to the
	// degraded force-seqscan plan (default 3; negative disables the
	// breaker). Degraded plans return identical rows — shedding trades
	// latency, never correctness.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped circuit stays open before a
	// single probe query retries the optimized plan (default 5s).
	BreakerCooldown time.Duration
	// Faults, when non-nil, is consulted at the server's admission
	// injection site (chaos tests). Nil — the production state —
	// reduces the site to a pointer check.
	Faults *minequery.FaultInjector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxStatements <= 0 {
		c.MaxStatements = 256
	}
	if c.EnvelopeCacheSize <= 0 {
		c.EnvelopeCacheSize = 1024
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = 250 * time.Millisecond
	}
	if c.SlowLogSize <= 0 {
		c.SlowLogSize = 128
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerThreshold < 0 {
		c.BreakerThreshold = 0 // disabled
	}
	return c
}

// Server is the minequeryd core: session management, the
// prepared-statement registry, the shared envelope cache, and admission
// control in front of one embedded engine. Create with New, expose
// Handler over any net/http server, stop with Shutdown (which drains
// in-flight queries).
type Server struct {
	eng      *minequery.Engine
	cfg      Config
	mux      *http.ServeMux
	adm      *admission
	reg      *registry
	env      *envCache
	sessions *sessionStore
	slow     *slowLog
	breaker  *breakerSet
	metrics  *minequery.MetricsRegistry
	started  time.Time

	mu      sync.Mutex
	closing bool
	wg      sync.WaitGroup

	queries       atomic.Int64
	timeouts      atomic.Int64
	cancelled     atomic.Int64
	invalidations atomic.Int64

	// execHook, when set, runs after admission but before execution —
	// a test seam for holding a worker slot at a known point.
	execHook func()
}

// New wires a server around an engine. It installs the shared envelope
// cache on the engine and subscribes to catalog invalidation events;
// the engine should not be mutated concurrently with serving except
// through catalog operations (retrain, index DDL, analyze), which the
// cache layers are built to absorb.
func New(eng *minequery.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		mux:      http.NewServeMux(),
		adm:      newAdmission(cfg.Workers, cfg.QueueDepth),
		reg:      newRegistry(eng, cfg.MaxStatements),
		env:      newEnvCache(cfg.EnvelopeCacheSize),
		sessions: newSessionStore(),
		slow:     newSlowLog(cfg.SlowLogSize),
		breaker:  newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		started:  time.Now(),
	}
	s.metrics = s.buildMetrics()
	eng.SetEnvelopeCache(s.env)
	eng.OnInvalidate(func(ev minequery.InvalidationEvent) {
		s.invalidations.Add(1)
		// Statement plans re-validate lazily against the epoch; the
		// envelope cache is fingerprint-keyed so model churn only strands
		// dead entries — purge to reclaim the space.
		if ev.Model != "" {
			s.env.Purge()
		}
	})
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/session/{id}/settings", s.handleSessionSettings)
	s.mux.HandleFunc("POST /v1/prepare", s.handlePrepare)
	s.mux.HandleFunc("POST /v1/execute", s.handleExecute)
	s.mux.HandleFunc("POST /v1/exec", s.handleExec)
	s.mux.HandleFunc("POST /v1/explain-analyze", s.handleExplainAnalyze)
	s.mux.HandleFunc("POST /v1/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("DELETE /v1/subscribe/{id}", s.handleUnsubscribe)
	s.mux.HandleFunc("GET /v1/subscriptions", s.handleSubscriptions)
	s.mux.HandleFunc("GET /v1/notifications", s.handleNotifications)
	s.mux.HandleFunc("POST /v1/shard-exec", s.handleShardExec)
	s.mux.HandleFunc("GET /v1/shard-info", s.handleShardInfo)
	s.mux.HandleFunc("GET /v1/slowlog", s.handleSlowlog)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admitting new requests and waits for in-flight ones
// to drain, or for ctx to expire. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown drain: %w", ctx.Err())
	}
}

// beginRequest registers an in-flight request against the drain group,
// refusing once shutdown has begun. Callers must call the returned
// func when done.
func (s *Server) beginRequest() (func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return nil, errShuttingDown
	}
	s.wg.Add(1)
	return s.wg.Done, nil
}

// ---- request/response wire types ----

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type sessionResponse struct {
	SessionID string `json:"session_id"`
}

type settingsRequest struct {
	DOP       *int    `json:"dop"`
	ForcePath *string `json:"force_path"`
	TimeoutMS *int64  `json:"timeout_ms"`
}

type prepareRequest struct {
	SQL       string `json:"sql"`
	SessionID string `json:"session_id"`
}

type prepareResponse struct {
	StatementID string `json:"statement_id"`
	Cached      bool   `json:"cached"`
	Plan        string `json:"plan"`
	AccessPath  string `json:"access_path"`
}

type executeRequest struct {
	SQL         string `json:"sql"`
	StatementID string `json:"statement_id"`
	SessionID   string `json:"session_id"`
	TimeoutMS   int64  `json:"timeout_ms"`
}

type execStatsBody struct {
	DurationUS    int64   `json:"duration_us"`
	SeqPageReads  int64   `json:"seq_page_reads"`
	RandPageReads int64   `json:"rand_page_reads"`
	TupleReads    int64   `json:"tuple_reads"`
	CostUnits     float64 `json:"cost_units"`
}

// columnMetaBody is the wire form of one output column's
// self-description. It rides in the response's "schema" field, which
// predates-this-field clients simply ignore; "columns" (names only)
// stays as-is for them.
type columnMetaBody struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	Source string `json:"source"`
}

type executeResponse struct {
	StatementID       string   `json:"statement_id"`
	StatementCacheHit bool     `json:"statement_cache_hit"`
	Columns           []string `json:"columns"`
	// Schema self-describes each output column (name, value kind, and
	// whether it is projected from the input or computed by an
	// aggregate), so clients never re-derive types from the query text.
	Schema         []columnMetaBody `json:"schema"`
	Rows           [][]any          `json:"rows"`
	RowCount       int              `json:"row_count"`
	Plan           string           `json:"plan"`
	AccessPath     string           `json:"access_path"`
	PlanChanged    bool             `json:"plan_changed"`
	EstSelectivity float64          `json:"est_selectivity"`
	// Degraded: the table's circuit breaker shed this query to the
	// force-seqscan plan. Fallback: the engine itself re-ran the query
	// on the baseline scan after a transient index-path failure. Both
	// return exactly the rows the optimized plan would have.
	Degraded bool          `json:"degraded"`
	Fallback bool          `json:"fallback"`
	Retries  int64         `json:"retries"`
	Stats    execStatsBody `json:"stats"`
}

type execRequest struct {
	SQL       string `json:"sql"`
	SessionID string `json:"session_id"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type execResponse struct {
	Statement    string   `json:"statement"`
	Table        string   `json:"table"`
	RowsAffected int64    `json:"rows_affected"`
	Retrained    []string `json:"retrained,omitempty"`
	Epoch        int64    `json:"epoch"`
	// Model summarizes the trained model (CREATE MODEL only).
	Model *execModelBody `json:"model,omitempty"`
	// RetrainError reports a write-volume retrain that failed AFTER the
	// statement's rows committed durably. The statement succeeded —
	// rows_affected is authoritative, the response is a 200 — and the
	// retrain retries on the next write. Clients must not re-issue the
	// statement.
	RetrainError string `json:"retrain_error,omitempty"`
}

type execModelBody struct {
	Name    string `json:"name"`
	Classes int    `json:"classes"`
	Version int64  `json:"version"`
}

type explainAnalyzeRequest struct {
	SQL       string `json:"sql"`
	SessionID string `json:"session_id"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type explainAnalyzeResponse struct {
	Plan           string        `json:"plan"`
	AccessPath     string        `json:"access_path"`
	RowCount       int           `json:"row_count"`
	EstSelectivity float64       `json:"est_selectivity"`
	RewriteNotes   []string      `json:"rewrite_notes"`
	Analyze        string        `json:"analyze"`
	Stats          execStatsBody `json:"stats"`
}

type slowlogResponse struct {
	ThresholdMS int64          `json:"threshold_ms"`
	Total       int64          `json:"total"`
	Entries     []slowLogEntry `json:"entries"`
}

type statsResponse struct {
	UptimeMS           int64          `json:"uptime_ms"`
	Sessions           int            `json:"sessions"`
	Queries            int64          `json:"queries"`
	Timeouts           int64          `json:"timeouts"`
	Cancelled          int64          `json:"cancelled"`
	CatalogEpoch       int64          `json:"catalog_epoch"`
	InvalidationEvents int64          `json:"invalidation_events"`
	Admission          admissionStats `json:"admission"`
	Prepared           registryStats  `json:"prepared"`
	EnvelopeCache      envCacheStats  `json:"envelope_cache"`
	Breaker            breakerStats   `json:"breaker"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	code, status := classify(err)
	switch code {
	case CodeTimeout:
		s.timeouts.Add(1)
	case CodeCancelled:
		s.cancelled.Add(1)
	}
	writeJSON(w, status, map[string]errorBody{"error": {Code: code, Message: err.Error()}})
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest("decode request: " + err.Error())
	}
	return nil
}

// schemaToJSON converts a result's column metadata to the wire form.
func schemaToJSON(cols []minequery.ColumnMeta) []columnMetaBody {
	out := make([]columnMetaBody, len(cols))
	for i, c := range cols {
		out[i] = columnMetaBody{Name: c.Name, Kind: c.Kind.String(), Source: c.Source}
	}
	return out
}

// rowsToJSON converts tuples to JSON-friendly values.
func rowsToJSON(rows []minequery.Tuple) [][]any {
	out := make([][]any, len(rows))
	for i, row := range rows {
		vals := make([]any, len(row))
		for j, v := range row {
			switch v.Kind() {
			case minequery.KindNull:
				vals[j] = nil
			case minequery.KindInt:
				vals[j] = v.AsInt()
			case minequery.KindFloat:
				vals[j] = v.AsFloat()
			case minequery.KindBool:
				vals[j] = v.AsBool()
			default:
				vals[j] = v.AsString()
			}
		}
		out[i] = vals
	}
	return out
}

// ---- handlers ----

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	sess := s.sessions.create()
	writeJSON(w, http.StatusOK, sessionResponse{SessionID: sess.id})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	if !s.sessions.drop(r.PathValue("id")) {
		s.writeError(w, errNotFound("no session "+r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) handleSessionSettings(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, errNotFound("no session "+r.PathValue("id")))
		return
	}
	var req settingsRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.ForcePath != nil && *req.ForcePath != "" && *req.ForcePath != "seqscan" {
		s.writeError(w, errBadRequest(`force_path must be "" or "seqscan"`))
		return
	}
	sess.mu.Lock()
	if req.DOP != nil {
		sess.settings.DOP = *req.DOP
	}
	if req.ForcePath != nil {
		sess.settings.ForcePath = *req.ForcePath
	}
	if req.TimeoutMS != nil {
		sess.settings.Timeout = time.Duration(*req.TimeoutMS) * time.Millisecond
	}
	cur := sess.settings
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"dop":        cur.DOP,
		"force_path": cur.ForcePath,
		"timeout_ms": cur.Timeout.Milliseconds(),
	})
}

// resolveSettings loads the session's settings, or defaults when no
// session is named.
func (s *Server) resolveSettings(sessionID string) (sessionSettings, error) {
	if sessionID == "" {
		return sessionSettings{}, nil
	}
	sess, ok := s.sessions.get(sessionID)
	if !ok {
		return sessionSettings{}, errNotFound("no session " + sessionID)
	}
	return sess.snapshot(), nil
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	var req prepareRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.SQL == "" {
		s.writeError(w, errBadRequest("sql is required"))
		return
	}
	settings, err := s.resolveSettings(req.SessionID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ent, cached, err := s.reg.prepare(req.SQL, settings.ForcePath == "seqscan")
	if err != nil {
		s.writeError(w, err)
		return
	}
	ent.mu.Lock()
	planStr, path := ent.prepared.Plan(), ent.prepared.AccessPath()
	ent.mu.Unlock()
	writeJSON(w, http.StatusOK, prepareResponse{
		StatementID: ent.id,
		Cached:      cached,
		Plan:        planStr,
		AccessPath:  path,
	})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	var req executeRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if (req.SQL == "") == (req.StatementID == "") {
		s.writeError(w, errBadRequest("exactly one of sql or statement_id is required"))
		return
	}
	settings, err := s.resolveSettings(req.SessionID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if settings.Timeout > 0 {
		timeout = settings.Timeout
	}
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: a worker slot or a bounded wait for one. The wait is
	// itself under the query deadline, so a queued query times out
	// rather than waiting forever.
	if err := s.adm.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.adm.release()
	if s.execHook != nil {
		s.execHook()
	}
	if err := s.cfg.Faults.Hit(minequery.FaultSiteAdmission); err != nil {
		s.writeError(w, err)
		return
	}

	var ent *stmtEntry
	if req.StatementID != "" {
		var ok bool
		if ent, ok = s.reg.byStatementID(req.StatementID); !ok {
			s.writeError(w, errNotFound("no statement "+req.StatementID))
			return
		}
	} else {
		if ent, _, err = s.reg.lookup(req.SQL, settings.ForcePath == "seqscan"); err != nil {
			s.writeError(w, err)
			return
		}
	}
	res, reused, degraded, err := s.executeGuarded(ctx, ent, settingsExecOpts(settings))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.queries.Add(1)
	s.maybeRecordSlow(ent.norm, res)
	writeJSON(w, http.StatusOK, executeResponse{
		StatementID:       ent.id,
		StatementCacheHit: reused,
		Columns:           res.ColumnNames(),
		Schema:            schemaToJSON(res.Columns),
		Rows:              rowsToJSON(res.Rows),
		RowCount:          len(res.Rows),
		Plan:              res.Plan,
		AccessPath:        res.AccessPath,
		PlanChanged:       res.PlanChanged,
		EstSelectivity:    res.EstSelectivity,
		Degraded:          degraded,
		Fallback:          res.Fallback,
		Retries:           res.Retries,
		Stats: execStatsBody{
			DurationUS:    res.Stats.Duration.Microseconds(),
			SeqPageReads:  res.Stats.SeqPageReads,
			RandPageReads: res.Stats.RandPageReads,
			TupleReads:    res.Stats.TupleReads,
			CostUnits:     res.Stats.CostUnits,
		},
	})
}

// handleExec runs one write statement (INSERT/UPDATE/DELETE or CREATE
// MODEL) through the engine's durable write path. Writes go through the
// same admission control as queries — a burst of inserts queues behind
// the worker pool rather than starving readers — and through the same
// error taxonomy, so clients see parse_error/unsupported_query for bad
// statements and transient for injected write-path failures.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	var req execRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.SQL == "" {
		s.writeError(w, errBadRequest("sql is required"))
		return
	}
	settings, err := s.resolveSettings(req.SessionID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if settings.Timeout > 0 {
		timeout = settings.Timeout
	}
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.adm.release()
	if s.execHook != nil {
		s.execHook()
	}
	if err := s.cfg.Faults.Hit(minequery.FaultSiteAdmission); err != nil {
		s.writeError(w, err)
		return
	}
	res, err := s.eng.Exec(ctx, req.SQL)
	if err != nil {
		// A failed retrain after a durably committed write is partial
		// success, not statement failure: the rows are applied and logged,
		// so a 5xx here would invite the client to re-issue (and
		// double-apply) the statement. Report 200 with the populated
		// result and the retrain error alongside.
		if res == nil || !errors.Is(err, minequery.ErrRetrainFailed) {
			s.writeError(w, err)
			return
		}
	}
	s.queries.Add(1)
	body := execResponse{
		Statement:    res.Statement,
		Table:        res.Table,
		RowsAffected: res.RowsAffected,
		Retrained:    res.Retrained,
		Epoch:        res.Epoch,
	}
	if err != nil {
		body.RetrainError = err.Error()
	}
	if res.Model != nil {
		body.Model = &execModelBody{
			Name:    res.Model.Name,
			Classes: len(res.Model.Classes),
			Version: res.Model.Version,
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// executeGuarded runs the entry's plan behind the per-table circuit
// breaker. When the table's circuit is open, the query is shed to the
// degraded force-seqscan statement variant (identical rows, no index
// exposure); when half-open, one probe runs the optimized plan and its
// outcome closes or re-opens the circuit. Outcomes feeding the breaker:
// an engine-level fallback or a surfaced transient error counts as an
// index-path failure; clean completions count as success; anything else
// (timeouts, parse errors) carries no signal about the index path.
func (s *Server) executeGuarded(ctx context.Context, ent *stmtEntry, opts []minequery.QueryOption) (res *minequery.Result, planReused, degraded bool, err error) {
	table := ent.tableName()
	probe := false
	if !ent.force {
		degraded, probe = s.breaker.allow(table)
	}
	if degraded {
		dent, _, derr := s.reg.lookup(ent.sql, true)
		if derr == nil {
			res, planReused, err = s.reg.execute(ctx, dent, opts)
			if err == nil {
				s.breaker.degraded.Add(1)
				return res, planReused, true, nil
			}
			return nil, false, true, err
		}
		degraded = false // degraded lookup failed; run the optimized plan
	}
	res, planReused, err = s.reg.execute(ctx, ent, opts)
	if table == "" {
		// First execution of this entry prepared the plan just now; the
		// breaker can attribute the outcome from here on.
		table = ent.tableName()
	}
	if !ent.force {
		failed := (err != nil && errors.Is(err, minequery.ErrTransient) && ctx.Err() == nil) ||
			(err == nil && res.Fallback)
		switch {
		case failed:
			s.breaker.report(table, probe, true)
		case err == nil:
			s.breaker.report(table, probe, false)
		case probe:
			s.breaker.probeInconclusive(table)
		}
	}
	return res, planReused, false, err
}

// settingsExecOpts translates session settings into per-execution
// query options (plan-shaping settings are applied at prepare time).
func settingsExecOpts(settings sessionSettings) []minequery.QueryOption {
	var opts []minequery.QueryOption
	if settings.DOP > 0 {
		opts = append(opts, minequery.WithDOP(settings.DOP))
	}
	return opts
}

// maybeRecordSlow logs the completed query when it met the slow-query
// threshold. normSQL is the normalized statement text.
func (s *Server) maybeRecordSlow(normSQL string, res *minequery.Result) {
	if s.cfg.SlowQueryThreshold < 0 || res.Stats.Duration < s.cfg.SlowQueryThreshold {
		return
	}
	e := slowLogEntry{
		Time:          time.Now(),
		SQL:           normSQL,
		AccessPath:    res.AccessPath,
		DurationUS:    res.Stats.Duration.Microseconds(),
		Rows:          len(res.Rows),
		SeqPageReads:  res.Stats.SeqPageReads,
		RandPageReads: res.Stats.RandPageReads,
		TupleReads:    res.Stats.TupleReads,
		CostUnits:     res.Stats.CostUnits,
		Plan:          res.Plan,
	}
	if res.Analyze != nil {
		e.Analyze = res.Analyze.Render(false)
	}
	s.slow.record(e)
}

// handleExplainAnalyze runs the statement once with per-operator
// instrumentation and envelope attribution, returning the rendered
// report instead of the result rows. It is a one-shot diagnostic: the
// statement registry is bypassed so the profiled run never perturbs
// cached plans, but session settings (DOP, force_path) and admission
// control still apply — the query really executes.
func (s *Server) handleExplainAnalyze(w http.ResponseWriter, r *http.Request) {
	done, err := s.beginRequest()
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer done()
	var req explainAnalyzeRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.SQL == "" {
		s.writeError(w, errBadRequest("sql is required"))
		return
	}
	settings, err := s.resolveSettings(req.SessionID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if settings.Timeout > 0 {
		timeout = settings.Timeout
	}
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if err := s.adm.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.adm.release()
	if s.execHook != nil {
		s.execHook()
	}
	if err := s.cfg.Faults.Hit(minequery.FaultSiteAdmission); err != nil {
		s.writeError(w, err)
		return
	}

	opts := append(settingsExecOpts(settings), minequery.WithAnalyze())
	if settings.ForcePath != "" {
		opts = append(opts, minequery.WithForcedPath(settings.ForcePath))
	}
	res, err := s.eng.Query(ctx, req.SQL, opts...)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if res.Analyze == nil {
		s.writeError(w, &apiError{code: CodeInternal, msg: "engine instrumentation is disabled"})
		return
	}
	s.queries.Add(1)
	if norm, nerr := sqlparse.Normalize(req.SQL); nerr == nil {
		s.maybeRecordSlow(norm, res)
	}
	writeJSON(w, http.StatusOK, explainAnalyzeResponse{
		Plan:           res.Plan,
		AccessPath:     res.AccessPath,
		RowCount:       len(res.Rows),
		EstSelectivity: res.EstSelectivity,
		RewriteNotes:   res.RewriteNotes,
		Analyze:        res.Analyze.Render(false),
		Stats: execStatsBody{
			DurationUS:    res.Stats.Duration.Microseconds(),
			SeqPageReads:  res.Stats.SeqPageReads,
			RandPageReads: res.Stats.RandPageReads,
			TupleReads:    res.Stats.TupleReads,
			CostUnits:     res.Stats.CostUnits,
		},
	})
}

// handleSlowlog serves the slow-query ring buffer, newest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, slowlogResponse{
		ThresholdMS: s.cfg.SlowQueryThreshold.Milliseconds(),
		Total:       s.slow.total.Load(),
		Entries:     s.slow.entries(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeMS:           time.Since(s.started).Milliseconds(),
		Sessions:           s.sessions.count(),
		Queries:            s.queries.Load(),
		Timeouts:           s.timeouts.Load(),
		Cancelled:          s.cancelled.Load(),
		CatalogEpoch:       s.eng.CatalogEpoch(),
		InvalidationEvents: s.invalidations.Load(),
		Admission:          s.adm.stats(),
		Prepared:           s.reg.stats(),
		EnvelopeCache:      s.env.stats(),
		Breaker:            s.breaker.stats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
