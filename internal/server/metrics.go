package server

import (
	"net/http"

	"minequery"
)

// buildMetrics assembles the server's metrics registry: the engine-wide
// series (minequery_*) plus the minequeryd_* server series, all bridged
// from the counters the server already keeps — no second accounting
// path. The series names here are frozen: cmd/metricslint checks every
// one of them against a live /metrics scrape in CI, so renaming or
// dropping a series is a deliberate, lint-visible act.
func (s *Server) buildMetrics() *minequery.MetricsRegistry {
	reg := minequery.NewMetricsRegistry()
	s.eng.RegisterMetrics(reg)

	counter := func(v int64) float64 { return float64(v) }

	reg.CounterFunc("minequeryd_queries_total",
		"Queries executed successfully by the server.",
		func() float64 { return counter(s.queries.Load()) })
	reg.CounterFunc("minequeryd_timeouts_total",
		"Queries that exceeded their deadline.",
		func() float64 { return counter(s.timeouts.Load()) })
	reg.CounterFunc("minequeryd_cancelled_total",
		"Queries whose client went away mid-execution.",
		func() float64 { return counter(s.cancelled.Load()) })
	reg.CounterFunc("minequeryd_invalidations_total",
		"Catalog invalidation events observed (retrain, DDL, analyze).",
		func() float64 { return counter(s.invalidations.Load()) })
	reg.GaugeFunc("minequeryd_sessions",
		"Live client sessions.",
		func() float64 { return float64(s.sessions.count()) })

	reg.CounterFunc("minequeryd_admission_admitted_total",
		"Requests granted a worker slot.",
		func() float64 { return counter(s.adm.stats().Admitted) })
	reg.CounterFunc("minequeryd_admission_rejected_total",
		"Requests rejected because the wait queue was full.",
		func() float64 { return counter(s.adm.stats().Rejected) })
	reg.GaugeFunc("minequeryd_admission_in_flight",
		"Queries currently holding a worker slot.",
		func() float64 { return float64(s.adm.stats().InFlight) })
	reg.GaugeFunc("minequeryd_admission_waiting",
		"Queries queued for a worker slot.",
		func() float64 { return float64(s.adm.stats().Waiting) })

	reg.CounterFunc("minequeryd_prepared_hits_total",
		"Statement-cache lookups served from a cached valid plan.",
		func() float64 { return counter(s.reg.stats().Hits) })
	reg.CounterFunc("minequeryd_prepared_misses_total",
		"Statement-cache lookups that prepared a plan from scratch.",
		func() float64 { return counter(s.reg.stats().Misses) })
	reg.CounterFunc("minequeryd_prepared_reprepares_total",
		"Stale plans rebuilt in place after catalog changes.",
		func() float64 { return counter(s.reg.stats().Reprepares) })
	reg.CounterFunc("minequeryd_prepared_evictions_total",
		"Statements evicted from the registry (FIFO capacity).",
		func() float64 { return counter(s.reg.stats().Evictions) })
	reg.GaugeFunc("minequeryd_prepared_size",
		"Statements currently registered.",
		func() float64 { return float64(s.reg.stats().Size) })

	reg.CounterFunc("minequeryd_envelope_cache_hits_total",
		"Envelope-cache hits (rewrites served without re-derivation).",
		func() float64 { return counter(s.env.stats().Hits) })
	reg.CounterFunc("minequeryd_envelope_cache_misses_total",
		"Envelope-cache misses (envelopes derived from the model).",
		func() float64 { return counter(s.env.stats().Misses) })
	reg.GaugeFunc("minequeryd_envelope_cache_size",
		"Envelope-cache entries currently held.",
		func() float64 { return float64(s.env.stats().Size) })

	reg.GaugeFunc("minequeryd_breaker_open",
		"Tables whose circuit breaker is currently open or half-open.",
		func() float64 { return float64(s.breaker.openCount()) })
	reg.CounterFunc("minequeryd_breaker_trips_total",
		"Circuit-breaker trips (closed->open, and failed probes re-opening).",
		func() float64 {
			if s.breaker == nil {
				return 0
			}
			return counter(s.breaker.trips())
		})
	reg.CounterFunc("minequeryd_degraded_queries_total",
		"Queries shed to the degraded force-seqscan plan by an open breaker.",
		func() float64 {
			if s.breaker == nil {
				return 0
			}
			return counter(s.breaker.degraded.Load())
		})

	reg.CounterFunc("minequeryd_slowlog_entries_total",
		"Queries recorded in the slow-query log since start.",
		func() float64 { return counter(s.slow.total.Load()) })
	reg.GaugeFunc("minequeryd_slowlog_size",
		"Entries currently held in the slow-query ring buffer.",
		func() float64 { return float64(s.slow.size()) })

	return reg
}

// handleMetrics serves the registry in Prometheus text exposition
// format. It deliberately skips beginRequest: scrapes should keep
// working while the server drains, and they never touch the engine.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.WritePrometheus(w)
}
