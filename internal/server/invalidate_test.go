package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"minequery"
)

func serverStats(t testing.TB, ts string) statsResponse {
	t.Helper()
	st, raw := call(t, "GET", ts+"/v1/stats", nil)
	if st != http.StatusOK {
		t.Fatalf("stats: %d %s", st, raw)
	}
	return decode[statsResponse](t, raw)
}

func retrain(t testing.TB, eng *minequery.Engine) {
	t.Helper()
	if _, err := eng.TrainNaiveBayes("segmodel", "segment", "customers",
		[]string{"age", "income"}, "segment", minequery.BayesOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestInvalidationReprepares pins the invalidation contract end to end:
// every catalog mutation bumps the epoch, the next execute of a cached
// statement transparently re-prepares exactly once, and the re-prepared
// plan's results match a fresh unprepared query against the new catalog
// state.
func TestInvalidationReprepares(t *testing.T) {
	eng := testEngine(t, 4000)
	_, ts := testServer(t, eng, Config{})

	st, raw := call(t, "POST", ts.URL+"/v1/prepare", prepareRequest{SQL: vipQuery})
	if st != http.StatusOK {
		t.Fatalf("prepare: %d %s", st, raw)
	}
	stmt := decode[prepareResponse](t, raw)
	if st, raw := call(t, "POST", ts.URL+"/v1/execute", executeRequest{StatementID: stmt.StatementID}); st != http.StatusOK {
		t.Fatalf("warm execute: %d %s", st, raw)
	}

	mutations := []struct {
		name   string
		mutate func(t testing.TB)
	}{
		{"model-retrain", func(t testing.TB) { retrain(t, eng) }},
		{"index-drop", func(t testing.TB) {
			if err := eng.DropIndexes("customers"); err != nil {
				t.Fatal(err)
			}
		}},
		{"index-create", func(t testing.TB) {
			if err := eng.CreateIndex("ix_age_income", "customers", "age", "income"); err != nil {
				t.Fatal(err)
			}
		}},
		{"stats-refresh", func(t testing.TB) {
			if err := eng.Analyze("customers"); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			before := serverStats(t, ts.URL)
			m.mutate(t)
			mid := serverStats(t, ts.URL)
			if mid.InvalidationEvents <= before.InvalidationEvents {
				t.Fatalf("invalidation_events %d -> %d: mutation not observed",
					before.InvalidationEvents, mid.InvalidationEvents)
			}
			if mid.CatalogEpoch <= before.CatalogEpoch {
				t.Fatalf("catalog_epoch %d -> %d: epoch did not advance",
					before.CatalogEpoch, mid.CatalogEpoch)
			}

			want, err := eng.Query(context.Background(), vipQuery)
			if err != nil {
				t.Fatal(err)
			}
			wantRows, err := json.Marshal(rowsToJSON(want.Rows))
			if err != nil {
				t.Fatal(err)
			}

			st, raw := call(t, "POST", ts.URL+"/v1/execute", executeRequest{StatementID: stmt.StatementID})
			if st != http.StatusOK {
				t.Fatalf("execute after %s: %d %s", m.name, st, raw)
			}
			got := decode[executeWire](t, raw)
			if got.StatementCacheHit {
				t.Fatalf("execute after %s reported a statement cache hit; want re-prepare", m.name)
			}
			if !bytes.Equal(bytes.TrimSpace(got.Rows), wantRows) {
				t.Fatalf("rows after %s diverge from fresh query:\n got %s\nwant %s",
					m.name, got.Rows, wantRows)
			}

			after := serverStats(t, ts.URL)
			if after.Prepared.Reprepares != mid.Prepared.Reprepares+1 {
				t.Fatalf("reprepares %d -> %d after %s; want exactly one",
					mid.Prepared.Reprepares, after.Prepared.Reprepares, m.name)
			}

			// Steady state again: the re-prepared plan is a cache hit.
			if st, raw := call(t, "POST", ts.URL+"/v1/execute", executeRequest{StatementID: stmt.StatementID}); st != http.StatusOK {
				t.Fatalf("re-execute: %d %s", st, raw)
			} else if !decode[executeWire](t, raw).StatementCacheHit {
				t.Fatal("second execute after re-prepare missed the statement cache")
			}
		})
	}
}

// TestModelEventPurgesEnvelopeCache: model-affecting invalidations purge
// the envelope cache (a space reclaim — fingerprint keys already make
// stale hits impossible), while pure stats refreshes leave it alone.
func TestModelEventPurgesEnvelopeCache(t *testing.T) {
	eng := testEngine(t, 2000)
	_, ts := testServer(t, eng, Config{})
	if st, raw := call(t, "POST", ts.URL+"/v1/execute", executeRequest{SQL: vipQuery}); st != http.StatusOK {
		t.Fatalf("execute: %d %s", st, raw)
	}
	before := serverStats(t, ts.URL)
	if before.EnvelopeCache.Size == 0 {
		t.Fatal("envelope cache empty after a mining query")
	}
	if err := eng.Analyze("customers"); err != nil {
		t.Fatal(err)
	}
	mid := serverStats(t, ts.URL)
	if mid.EnvelopeCache.Purges != before.EnvelopeCache.Purges {
		t.Fatalf("stats refresh purged the envelope cache (purges %d -> %d)",
			before.EnvelopeCache.Purges, mid.EnvelopeCache.Purges)
	}
	retrain(t, eng)
	after := serverStats(t, ts.URL)
	if after.EnvelopeCache.Purges != mid.EnvelopeCache.Purges+1 {
		t.Fatalf("retrain purges %d -> %d; want exactly one purge",
			mid.EnvelopeCache.Purges, after.EnvelopeCache.Purges)
	}
	if after.EnvelopeCache.Size != 0 {
		t.Fatalf("envelope cache size %d after purge; want 0", after.EnvelopeCache.Size)
	}
}

// TestConcurrentPrepareExecuteInvalidate hammers prepare/execute while
// the model is retrained in a loop. Run under -race this pins the
// locking discipline; the behavioral assertions are deliberately loose —
// every response must be a well-typed success, timeout, or stale-plan
// conflict, and the server must be fully consistent afterwards.
func TestConcurrentPrepareExecuteInvalidate(t *testing.T) {
	eng := testEngine(t, 1500)
	_, ts := testServer(t, eng, Config{})

	const iters = 40
	var wg sync.WaitGroup
	fail := make(chan string, 256)

	// Catalog mutator: single writer, as the engine requires.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := eng.TrainNaiveBayes("segmodel", "segment", "customers",
				[]string{"age", "income"}, "segment", minequery.BayesOptions{}); err != nil {
				fail <- "retrain: " + err.Error()
				return
			}
			if i%8 == 3 {
				if err := eng.Analyze("customers"); err != nil {
					fail <- "analyze: " + err.Error()
					return
				}
			}
		}
	}()

	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				st, raw := call(t, "POST", ts.URL+"/v1/execute", executeRequest{SQL: vipQuery})
				switch st {
				case http.StatusOK, http.StatusConflict:
				default:
					fail <- string(raw)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if st, raw := call(t, "POST", ts.URL+"/v1/prepare", prepareRequest{SQL: vipQuery}); st != http.StatusOK {
				fail <- string(raw)
				return
			}
		}
	}()

	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Errorf("concurrent request failed: %s", msg)
	}

	// Quiesced: one more execute must match a fresh query exactly.
	want, err := eng.Query(context.Background(), vipQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := json.Marshal(rowsToJSON(want.Rows))
	if err != nil {
		t.Fatal(err)
	}
	st, raw := call(t, "POST", ts.URL+"/v1/execute", executeRequest{SQL: vipQuery})
	if st != http.StatusOK {
		t.Fatalf("final execute: %d %s", st, raw)
	}
	if got := decode[executeWire](t, raw); !bytes.Equal(bytes.TrimSpace(got.Rows), wantRows) {
		t.Fatalf("post-churn rows diverge:\n got %s\nwant %s", got.Rows, wantRows)
	}
	stats := serverStats(t, ts.URL)
	if stats.Queries == 0 || stats.Prepared.Misses == 0 {
		t.Fatalf("implausible post-churn stats: %+v", stats)
	}
}
