package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint scrapes /metrics and checks the exposition
// carries both engine and server series, and that query activity moves
// the counters.
func TestMetricsEndpoint(t *testing.T) {
	eng := testEngine(t, 400)
	_, ts := testServer(t, eng, Config{})

	status, raw := call(t, http.MethodGet, ts.URL+"/metrics", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", status)
	}
	body := string(raw)
	for _, series := range []string{
		"minequery_queries_total{",
		"minequery_query_stage_seconds_bucket{",
		"minequery_rows_scanned_total",
		"minequery_rows_returned_total",
		"minequeryd_queries_total",
		"minequeryd_admission_admitted_total",
		"minequeryd_prepared_hits_total",
		"minequeryd_envelope_cache_hits_total",
		"minequeryd_slowlog_size",
		"minequeryd_sessions",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("scrape missing %q", series)
		}
	}

	// Run a query, then confirm the server counter moved.
	status, raw = call(t, http.MethodPost, ts.URL+"/v1/execute", executeRequest{SQL: vipQuery})
	if status != http.StatusOK {
		t.Fatalf("execute: status %d: %s", status, raw)
	}
	_, raw = call(t, http.MethodGet, ts.URL+"/metrics", nil)
	if !strings.Contains(string(raw), "minequeryd_queries_total 1") {
		t.Errorf("after one query, minequeryd_queries_total should read 1; scrape:\n%s", raw)
	}
	// The prepared path (the only one the server uses) must feed the
	// per-stage latency histograms: one prepare + one execute.
	for _, stage := range []string{"parse", "rewrite", "optimize", "execute"} {
		want := `minequery_query_stage_seconds_count{stage="` + stage + `"} 1`
		if !strings.Contains(string(raw), want) {
			t.Errorf("after one query, scrape missing %q:\n%s", want, raw)
		}
	}
}

// TestExplainAnalyzeEndpoint checks the one-shot profiled execution:
// report present, per-operator lines rendered, stats populated.
func TestExplainAnalyzeEndpoint(t *testing.T) {
	eng := testEngine(t, 400)
	_, ts := testServer(t, eng, Config{})

	// The budget segment is common, so the plan keeps a seqscan with an
	// envelope-augmented scan-level filter — the shape where attribution
	// is visible (unlike the vip query, which folds to a constant scan).
	budgetQuery := `SELECT id FROM customers
		PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
		WHERE m.segment = 'budget' AND customers.age <= 5`
	status, raw := call(t, http.MethodPost, ts.URL+"/v1/explain-analyze",
		explainAnalyzeRequest{SQL: budgetQuery})
	if status != http.StatusOK {
		t.Fatalf("explain-analyze: status %d: %s", status, raw)
	}
	resp := decode[explainAnalyzeResponse](t, raw)
	if resp.Analyze == "" {
		t.Fatal("analyze report is empty")
	}
	for _, want := range []string{"act_rows=", "est_rows=", "env_rejected=", "execution: path="} {
		if !strings.Contains(resp.Analyze, want) {
			t.Errorf("report missing %q:\n%s", want, resp.Analyze)
		}
	}
	if resp.Plan == "" || resp.AccessPath == "" {
		t.Errorf("plan/access_path missing: %+v", resp)
	}
	if resp.Stats.TupleReads == 0 {
		t.Errorf("stats.tuple_reads = 0, want > 0")
	}

	// Bad SQL gets the typed parse code; unknown table the 404 code.
	status, raw = call(t, http.MethodPost, ts.URL+"/v1/explain-analyze",
		explainAnalyzeRequest{SQL: "SELEC nope"})
	if status != http.StatusBadRequest || errCode(t, raw) != CodeParse {
		t.Errorf("parse error: status %d code %s", status, errCode(t, raw))
	}
	status, raw = call(t, http.MethodPost, ts.URL+"/v1/explain-analyze",
		explainAnalyzeRequest{SQL: "SELECT id FROM nope"})
	if status != http.StatusNotFound || errCode(t, raw) != CodeUnknownTable {
		t.Errorf("unknown table: status %d code %s", status, errCode(t, raw))
	}
}

// TestSlowlog checks recording against the threshold, normalized SQL
// in entries, newest-first order, and the ring bound.
func TestSlowlog(t *testing.T) {
	eng := testEngine(t, 400)
	// Threshold of 1ns: every query is slow. Ring of 2: third entry
	// evicts the first.
	_, ts := testServer(t, eng, Config{SlowQueryThreshold: time.Nanosecond, SlowLogSize: 2})

	for _, sql := range []string{
		"SELECT id FROM customers WHERE age = 1",
		"SELECT id FROM customers WHERE age = 2",
		"SELECT   ID from customers where AGE = 3",
	} {
		if status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", executeRequest{SQL: sql}); status != http.StatusOK {
			t.Fatalf("execute %q: status %d: %s", sql, status, raw)
		}
	}

	status, raw := call(t, http.MethodGet, ts.URL+"/v1/slowlog", nil)
	if status != http.StatusOK {
		t.Fatalf("GET /v1/slowlog: status %d", status)
	}
	resp := decode[slowlogResponse](t, raw)
	if resp.Total != 3 {
		t.Errorf("total = %d, want 3", resp.Total)
	}
	if len(resp.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (ring bound)", len(resp.Entries))
	}
	// Newest first, normalized SQL (lowercased, canonical spacing).
	if got := resp.Entries[0].SQL; got != "select id from customers where age = 3" {
		t.Errorf("entries[0].SQL = %q, want normalized newest query", got)
	}
	if got := resp.Entries[1].SQL; got != "select id from customers where age = 2" {
		t.Errorf("entries[1].SQL = %q, want second-newest query", got)
	}
	for i, e := range resp.Entries {
		if e.Plan == "" || e.AccessPath == "" || e.TupleReads == 0 {
			t.Errorf("entries[%d] incomplete: %+v", i, e)
		}
		if e.Analyze == "" {
			t.Errorf("entries[%d] missing per-operator actuals", i)
		}
	}
}

// TestSlowlogDisabled checks that a negative threshold records nothing.
func TestSlowlogDisabled(t *testing.T) {
	eng := testEngine(t, 400)
	_, ts := testServer(t, eng, Config{SlowQueryThreshold: -1})

	if status, raw := call(t, http.MethodPost, ts.URL+"/v1/execute", executeRequest{SQL: vipQuery}); status != http.StatusOK {
		t.Fatalf("execute: status %d: %s", status, raw)
	}
	_, raw := call(t, http.MethodGet, ts.URL+"/v1/slowlog", nil)
	resp := decode[slowlogResponse](t, raw)
	if resp.Total != 0 || len(resp.Entries) != 0 {
		t.Errorf("disabled slowlog recorded entries: %+v", resp)
	}
}
