package workload

import (
	"strings"
	"testing"

	"minequery/internal/dataset"
)

// smallCfg keeps the unit-test runs fast; full-scale runs live in
// cmd/experiments and bench_test.go.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.TestRows = 5000
	return cfg
}

func TestRunDecisionTreeShuttle(t *testing.T) {
	res, err := Run(dataset.ByName("Shuttle"), KindDecisionTree, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 7 {
		t.Fatalf("got %d queries, want 7 (one per class)", len(res.Queries))
	}
	if res.PlanChangedFraction() == 0 {
		t.Error("decision-tree workload should change at least one plan")
	}
	if res.AvgReduction() <= 0 {
		t.Error("decision-tree workload should reduce running cost on average")
	}
	for _, q := range res.Queries {
		// Tree envelopes are exact: envelope selectivity equals the
		// model's prediction selectivity.
		if diff := q.EnvSelectivity - q.OrigSelectivity; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("class %v: tree envelope not exact (orig %.5f env %.5f)",
				q.Class, q.OrigSelectivity, q.EnvSelectivity)
		}
		if q.EnvCost > q.ScanCost*1.05 {
			t.Errorf("class %v: envelope query (%f) costlier than scan (%f)", q.Class, q.EnvCost, q.ScanCost)
		}
	}
	if len(res.Indexes) == 0 {
		t.Error("tuner should have produced a physical design")
	}
}

func TestRunNaiveBayesEnvelopeSoundness(t *testing.T) {
	res, err := Run(dataset.ByName("Balance-Scale"), KindNaiveBayes, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range res.Queries {
		// Upper envelope: selectivity can only exceed the original.
		if q.EnvSelectivity+1e-9 < q.OrigSelectivity {
			t.Errorf("class %v: envelope (%.5f) below original (%.5f) — unsound",
				q.Class, q.EnvSelectivity, q.OrigSelectivity)
		}
	}
}

func TestRunClusteringProducesQueries(t *testing.T) {
	res, err := Run(dataset.ByName("Balance-Scale"), KindClustering, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Queries) != 5 {
		t.Fatalf("got %d queries, want 5 (one per cluster)", len(res.Queries))
	}
	var total float64
	for _, q := range res.Queries {
		total += q.OrigSelectivity
		if q.EnvSelectivity+1e-9 < q.OrigSelectivity {
			t.Errorf("cluster %v: envelope below original", q.Class)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("cluster selectivities sum to %f, want 1 (partitional)", total)
	}
}

func TestRunRulesAndKMeansKinds(t *testing.T) {
	for _, kind := range []ModelKind{KindRules, KindKMeans} {
		res, err := Run(dataset.ByName("Balance-Scale"), kind, smallCfg())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(res.Queries) == 0 {
			t.Fatalf("%s: no queries", kind)
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	if _, err := Run(dataset.ByName("Diabetes"), ModelKind("nope"), smallCfg()); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestOverheadFieldsPopulated(t *testing.T) {
	res, err := Run(dataset.ByName("Diabetes"), KindDecisionTree, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainTime <= 0 || res.EnvelopeTime < 0 || res.OptimizeTime < 0 {
		t.Errorf("overhead timings not populated: %+v", res)
	}
	// The §5 claim for trees: derivation is cheap relative to training.
	if res.EnvelopeTime > res.TrainTime {
		t.Errorf("tree envelope derivation (%v) slower than training (%v)",
			res.EnvelopeTime, res.TrainTime)
	}
}

func TestQueryResultReduction(t *testing.T) {
	q := QueryResult{ScanCost: 200, EnvCost: 50}
	if q.Reduction() != 75 {
		t.Errorf("Reduction = %f, want 75", q.Reduction())
	}
	zero := QueryResult{}
	if zero.Reduction() != 0 {
		t.Error("zero scan cost should report 0 reduction")
	}
}

func TestPaperKindsNames(t *testing.T) {
	kinds := PaperKinds()
	if len(kinds) != 3 {
		t.Fatal("paper evaluates three families")
	}
	joined := ""
	for _, k := range kinds {
		joined += string(k) + ","
	}
	for _, want := range []string{"dtree", "nbayes", "cluster"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing kind %s in %s", want, joined)
		}
	}
}
