// Package workload drives the paper's Section 5 experiments: for a
// (data set, mining model) pair it builds the test table, trains the
// model, precomputes upper envelopes, lets the tuner generate a physical
// design for the envelope-query workload, and then measures — per class —
// the envelope query against a full table scan, recording running cost,
// plan changes, and selectivities. The aggregations in cmd/experiments
// and bench_test.go turn these records into the paper's tables and
// figures.
package workload

import (
	"fmt"
	"time"

	"minequery/internal/catalog"
	"minequery/internal/core"
	"minequery/internal/dataset"
	"minequery/internal/exec"
	"minequery/internal/expr"
	"minequery/internal/mining"
	"minequery/internal/mining/cluster"
	"minequery/internal/mining/dtree"
	"minequery/internal/mining/nbayes"
	"minequery/internal/mining/rules"
	"minequery/internal/opt"
	"minequery/internal/plan"
	"minequery/internal/tuner"
	"minequery/internal/value"
)

// ModelKind selects the mining model family under test.
type ModelKind string

// The model families of the paper's experiments (decision tree, naive
// Bayes, clustering) plus the rule-list and GMM extensions.
const (
	KindDecisionTree ModelKind = "dtree"
	KindNaiveBayes   ModelKind = "nbayes"
	KindClustering   ModelKind = "cluster"
	KindKMeans       ModelKind = "kmeans"
	KindRules        ModelKind = "rules"
)

// PaperKinds are the three families evaluated in the paper.
func PaperKinds() []ModelKind {
	return []ModelKind{KindDecisionTree, KindNaiveBayes, KindClustering}
}

// Config tunes an experiment run.
type Config struct {
	// TestRows is the test-table size (the paper used >1M; the default
	// 40000 preserves selectivities at a laptop-friendly scale).
	TestRows int
	// MaxIndexes bounds the tuner's physical design.
	MaxIndexes int
	// Optimizer is the cost model.
	Optimizer opt.Config
	// Envelopes tunes derivation.
	Envelopes core.Options
	// DOP is the scan degree of parallelism for query execution and
	// costing (<=0: serial), so the paper's experiments can be rerun at
	// DOP 1 vs N.
	DOP int
}

// DefaultConfig returns the standard experiment configuration.
func DefaultConfig() Config {
	return Config{
		TestRows:   40000,
		MaxIndexes: 16,
		Optimizer:  opt.DefaultConfig(),
		Envelopes:  core.DefaultOptions(),
	}
}

// QueryResult records one class's envelope-query measurement.
type QueryResult struct {
	Dataset string
	Kind    ModelKind
	Class   value.Value
	// OrigSelectivity is the fraction of test rows the model predicts
	// as the class; EnvSelectivity the fraction satisfying the envelope
	// predicate (Figure 7's two axes).
	OrigSelectivity float64
	EnvSelectivity  float64
	// ScanCost and EnvCost are the simulated running costs (cost units)
	// of the full scan and of the envelope query; ScanTime and EnvTime
	// the wall-clock analogues.
	ScanCost, EnvCost float64
	ScanTime, EnvTime time.Duration
	// PlanChanged is the paper's plan-change condition; AccessPath the
	// chosen path.
	PlanChanged bool
	AccessPath  string
	// Disjuncts is the envelope's disjunct count (complexity metric).
	Disjuncts int
	Envelope  string
}

// Reduction is the percentage running-cost reduction versus the scan.
func (q *QueryResult) Reduction() float64 {
	if q.ScanCost <= 0 {
		return 0
	}
	return 100 * (q.ScanCost - q.EnvCost) / q.ScanCost
}

// Result is one (data set, model) experiment.
type Result struct {
	Dataset string
	Kind    ModelKind
	// TrainTime and EnvelopeTime support the Section 5 overhead
	// experiment: envelope precomputation should be a small fraction of
	// training.
	TrainTime    time.Duration
	EnvelopeTime time.Duration
	// OptimizeTime and LookupTime compare query-optimization cost with
	// and without envelope lookup (the second overhead claim).
	OptimizeTime time.Duration
	LookupTime   time.Duration
	Queries      []QueryResult
	// Indexes lists the physical design the tuner produced.
	Indexes []string
}

// PlanChangedFraction is the fraction of queries whose plan changed.
func (r *Result) PlanChangedFraction() float64 {
	if len(r.Queries) == 0 {
		return 0
	}
	n := 0
	for _, q := range r.Queries {
		if q.PlanChanged {
			n++
		}
	}
	return float64(n) / float64(len(r.Queries))
}

// AvgReduction averages the per-query cost reductions.
func (r *Result) AvgReduction() float64 {
	if len(r.Queries) == 0 {
		return 0
	}
	var s float64
	for _, q := range r.Queries {
		s += q.Reduction()
	}
	return s / float64(len(r.Queries))
}

// train fits the requested model family on the spec's training set.
func train(spec *dataset.Spec, kind ModelKind) (mining.Model, error) {
	ts := spec.TrainSet()
	switch kind {
	case KindDecisionTree:
		// Bound leaf size like C4.5's pruning would: huge trees produce
		// envelope DNFs past the optimizer's disjunct threshold.
		minLeaf := len(ts.Rows) / 200
		if minLeaf < 2 {
			minLeaf = 2
		}
		return dtree.Train("m_"+spec.Name, "pred", ts, dtree.Options{MaxDepth: 10, MinLeaf: minLeaf})
	case KindNaiveBayes:
		// Like MLC++ pipelines, select features before naive Bayes: keep
		// the leading attributes. Classes whose signal lies outside the
		// selected features collapse toward the prior and may never be
		// predicted — their envelopes become NULL and plan as constant
		// scans, a case the paper explicitly reports.
		return nbayes.Train("m_"+spec.Name, "pred", projectInputs(ts, nbayesDims), nbayes.Options{})
	case KindClustering:
		// The paper's clustering substrate (Analysis Server) is
		// EM-based model clustering; the mixture components' differing
		// variances give compact per-cluster assignment regions, unlike
		// sharp k-means Voronoi splits of a single dense blob.
		return cluster.TrainGMM("m_"+spec.Name, "pred", clusterInputs(ts), cluster.Options{K: spec.Clusters, Seed: 42, MaxIters: 15})
	case KindKMeans:
		return cluster.TrainKMeans("m_"+spec.Name, "pred", clusterInputs(ts), cluster.Options{K: spec.Clusters, Seed: 42})
	case KindRules:
		return rules.Train("m_"+spec.Name, "pred", ts, rules.Options{})
	default:
		return nil, fmt.Errorf("workload: unknown model kind %q", kind)
	}
}

// clusterDims caps the number of attributes the clustering models
// consume: like a practitioner selecting features before clustering,
// the experiment clusters on the leading attributes. Beyond a handful
// of dimensions, axis-aligned envelopes of cluster assignment regions
// degrade for any derivation algorithm (see DESIGN.md).
const clusterDims = 5

// nbayesDims caps naive Bayes input width (feature selection).
const nbayesDims = 8

// clusterInputs projects a train set onto its leading attributes.
func clusterInputs(ts *mining.TrainSet) *mining.TrainSet {
	return projectInputs(ts, clusterDims)
}

// projectInputs projects a train set onto its n leading attributes.
func projectInputs(ts *mining.TrainSet, n int) *mining.TrainSet {
	if n >= ts.Schema.Len() {
		return ts
	}
	cols := make([]value.Column, n)
	for i := 0; i < n; i++ {
		cols[i] = ts.Schema.Col(i)
	}
	out := &mining.TrainSet{
		Schema: value.MustSchema(cols...),
		Labels: ts.Labels,
		Rows:   make([]value.Tuple, len(ts.Rows)),
	}
	for i, r := range ts.Rows {
		out.Rows[i] = r[:n]
	}
	return out
}

// Run executes the experiment for one (data set, model kind) pair.
func Run(spec *dataset.Spec, kind ModelKind, cfg Config) (*Result, error) {
	if cfg.TestRows <= 0 {
		cfg.TestRows = DefaultConfig().TestRows
	}
	if cfg.DOP > 0 {
		cfg.Optimizer.DOP = cfg.DOP
	}
	cat := catalog.New()
	table, err := cat.CreateTable(spec.Name, spec.Schema())
	if err != nil {
		return nil, err
	}
	var insertErr error
	spec.TestRows(cfg.TestRows, func(row value.Tuple) {
		if insertErr == nil {
			_, insertErr = table.Insert(row)
		}
	})
	if insertErr != nil {
		return nil, insertErr
	}

	trainStart := time.Now()
	model, err := train(spec, kind)
	if err != nil {
		return nil, err
	}
	trainTime := time.Since(trainStart)

	der, err := core.UpperEnvelopes(model, cfg.Envelopes)
	if err != nil {
		return nil, err
	}
	cat.RegisterModel(model, der.Envelopes)
	res := &Result{
		Dataset:      spec.Name,
		Kind:         kind,
		TrainTime:    trainTime,
		EnvelopeTime: der.Elapsed,
	}

	// Physical design: tune for the envelope-query workload.
	table.Analyze()
	var preds []expr.Expr
	for _, c := range model.Classes() {
		if env, ok := der.Envelopes[c.String()]; ok {
			preds = append(preds, env)
		}
	}
	cands := tuner.Recommend(table, preds, cfg.MaxIndexes)
	names, err := tuner.Apply(cat, spec.Name, cands)
	if err != nil {
		return nil, err
	}
	res.Indexes = names
	table.Analyze()

	// Ground-truth selectivities in one pass: model predictions and
	// envelope matches per class.
	binding, ok := mining.Bind(model, table.Schema)
	if !ok {
		return nil, fmt.Errorf("workload: model %s does not bind to %s", model.Name(), spec.Name)
	}
	classes := model.Classes()
	predCount := make(map[string]int64, len(classes))
	envCount := make(map[string]int64, len(classes))
	total := int64(0)
	buf := make(value.Tuple, len(model.InputColumns()))
	scanIt, err := exec.Build(cat, &plan.SeqScan{Table: spec.Name})
	if err != nil {
		return nil, err
	}
	for {
		row, done, err := scanIt.Next()
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
		total++
		predCount[binding.PredictInto(row, buf).String()]++
		for _, c := range classes {
			if env, ok := der.Envelopes[c.String()]; ok && env.Eval(table.Schema, row) {
				envCount[c.String()]++
			}
		}
	}
	scanIt.Close()

	// Per-class measurements.
	for _, c := range classes {
		env, ok := der.Envelopes[c.String()]
		if !ok {
			continue
		}
		q, err := measure(cat, table, env, cfg.Optimizer)
		if err != nil {
			return nil, err
		}
		q.Dataset = spec.Name
		q.Kind = kind
		q.Class = c
		q.OrigSelectivity = float64(predCount[c.String()]) / float64(total)
		q.EnvSelectivity = float64(envCount[c.String()]) / float64(total)
		q.Envelope = env.String()
		q.Disjuncts = countDisjuncts(env)
		res.Queries = append(res.Queries, *q)
	}

	// Overhead: optimization time with envelope lookup vs the bare
	// access-path selection on TRUE (no mining predicate).
	optStart := time.Now()
	for _, c := range classes {
		if env, ok := der.Envelopes[c.String()]; ok {
			opt.ChooseAccessPath(table, env, cfg.Optimizer)
		}
	}
	res.OptimizeTime = time.Since(optStart)
	lookupStart := time.Now()
	me, _ := cat.Model(model.Name())
	for _, c := range classes {
		me.Envelope(c)
	}
	res.LookupTime = time.Since(lookupStart)
	return res, nil
}

// measure runs the envelope query and the baseline scan, returning the
// per-query record (costs in simulated units using the optimizer's
// weights, like the paper's running-time comparison against SELECT *).
func measure(cat *catalog.Catalog, table *catalog.Table, env expr.Expr, cfg opt.Config) (*QueryResult, error) {
	// Envelope query: SELECT * FROM T WHERE <env>.
	r := opt.ChooseAccessPath(table, env, cfg)
	envCost, envTime, err := runAndCost(cat, table, r.Plan, cfg)
	if err != nil {
		return nil, err
	}
	// Baseline: SELECT * FROM T.
	scanCost, scanTime, err := runAndCost(cat, table, &plan.SeqScan{Table: table.Name}, cfg)
	if err != nil {
		return nil, err
	}
	return &QueryResult{
		ScanCost:    scanCost,
		EnvCost:     envCost,
		ScanTime:    scanTime,
		EnvTime:     envTime,
		PlanChanged: plan.Changed(r.Plan),
		AccessPath:  plan.PathOf(r.Plan).String(),
	}, nil
}

func runAndCost(cat *catalog.Catalog, table *catalog.Table, root plan.Node, cfg opt.Config) (float64, time.Duration, error) {
	before := table.Heap.Stats()
	start := time.Now()
	it, err := exec.BuildBatch(cat, root, exec.Options{DOP: cfg.DOP})
	if err != nil {
		return 0, 0, err
	}
	defer it.Close()
	for {
		_, done, err := it.NextBatch()
		if err != nil {
			return 0, 0, err
		}
		if done {
			break
		}
	}
	elapsed := time.Since(start)
	after := table.Heap.Stats()
	cost := float64(after.SeqPageReads-before.SeqPageReads)*cfg.SeqPageCost +
		float64(after.RandPageReads-before.RandPageReads)*cfg.RandomPageCost +
		float64(after.TupleReads-before.TupleReads)*cfg.RowCPUCost
	return cost, elapsed, nil
}

func countDisjuncts(e expr.Expr) int {
	if _, ok := e.(expr.FalseExpr); ok {
		return 0
	}
	if o, ok := e.(expr.Or); ok {
		return len(o.Kids)
	}
	return 1
}
