package exec

import (
	"context"
	"testing"

	"minequery/internal/expr"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// drainBatches pulls a batch iterator dry, checking the contract along
// the way: batches are never empty, and done comes with a nil batch.
func drainBatches(t *testing.T, it BatchIterator) []value.Tuple {
	t.Helper()
	defer it.Close()
	var out []value.Tuple
	for {
		b, done, err := it.NextBatch()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if b != nil {
				t.Fatal("done=true must come with a nil batch")
			}
			return out
		}
		if len(b) == 0 {
			t.Fatal("NextBatch returned an empty batch without done")
		}
		out = append(out, b...)
	}
}

// sameOrderedRows demands exact positional equality, not just the same
// multiset — the parallel scan promises deterministic heap order.
func sameOrderedRows(a, b []value.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestBatchRunMatchesTupleRun(t *testing.T) {
	c, _ := testDB(t, 3000)
	c.RegisterModel(catModel{}, nil)
	plans := []plan.Node{
		&plan.SeqScan{Table: "t"},
		&plan.Filter{Child: &plan.SeqScan{Table: "t"},
			Pred: expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(60)}},
		&plan.Project{Child: &plan.SeqScan{Table: "t"}, Cols: []string{"num", "cat"}},
		&plan.Predict{Child: &plan.SeqScan{Table: "t"}, Model: "catmod", As: "m.cls"},
		&plan.Filter{
			Child: &plan.Predict{Child: &plan.SeqScan{Table: "t"}, Model: "catmod", As: "m.cls"},
			Pred:  expr.Cmp{Col: "m.cls", Op: expr.OpEq, Val: value.Str("low")},
		},
		// Index access is adapted through AsBatch rather than batch-native.
		&plan.IndexSeek{Table: "t", Index: "ix_cat", EqVals: []value.Value{value.Str("c5")}},
	}
	for _, p := range plans {
		want, wantSchema, err := Run(c, p)
		if err != nil {
			t.Fatalf("%s: tuple run: %v", plan.Signature(p), err)
		}
		for _, dop := range []int{1, 4} {
			got, gotSchema, err := RunOpts(c, p, Options{DOP: dop, BatchSize: 64})
			if err != nil {
				t.Fatalf("%s dop=%d: batch run: %v", plan.Signature(p), dop, err)
			}
			if gotSchema.String() != wantSchema.String() {
				t.Fatalf("%s dop=%d: schema %v, want %v", plan.Signature(p), dop, gotSchema, wantSchema)
			}
			if !sameOrderedRows(got, want) {
				t.Fatalf("%s dop=%d: %d rows, want %d (or order differs)",
					plan.Signature(p), dop, len(got), len(want))
			}
		}
	}
}

func TestParallelScanMatchesSerialAfterDeletes(t *testing.T) {
	_, tb := testDB(t, 5000)
	// Punch holes so some pages are sparse and slot iteration must skip
	// deleted records inside morsels.
	var victims []storage.RID
	n := 0
	tb.Heap.Scan(func(rid storage.RID, _ []byte) bool {
		if n%3 == 0 {
			victims = append(victims, rid)
		}
		n++
		return true
	})
	for _, rid := range victims {
		tb.Heap.Delete(rid)
	}
	want := drainBatches(t, newBatchSeqScan(context.Background(), tb, &plan.SeqScan{Table: tb.Name}, Options{}.fill()))
	for _, dop := range []int{2, 4, 8} {
		got := drainBatches(t, newParallelScan(context.Background(), tb, &plan.SeqScan{Table: tb.Name}, Options{DOP: dop, MorselPages: 3}.fill()))
		if len(got) != int(tb.Heap.Len()) {
			t.Fatalf("dop=%d: %d rows, heap has %d live", dop, len(got), tb.Heap.Len())
		}
		if !sameOrderedRows(got, want) {
			t.Fatalf("dop=%d: parallel scan order/content differs from serial", dop)
		}
	}
}

func TestParallelScanTinyTable(t *testing.T) {
	// Fewer pages than DOP*MorselPages: workers must handle having
	// nothing to claim.
	c, _ := testDB(t, 5)
	got, _, err := RunOpts(c, &plan.SeqScan{Table: "t"}, Options{DOP: 8, MorselPages: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d rows, want 5", len(got))
	}
}

func TestBatchLimitStopsParallelScanEarly(t *testing.T) {
	c, _ := testDB(t, 5000)
	p := &plan.Limit{Child: &plan.SeqScan{Table: "t"}, N: 10}
	got, _, err := RunOpts(c, p, Options{DOP: 4, MorselPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("limit over parallel scan returned %d rows", len(got))
	}
	// Limit preserves heap order, so the prefix must match the serial scan.
	want, _, err := RunOpts(c, p, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOrderedRows(got, want) {
		t.Fatal("limited parallel prefix differs from serial prefix")
	}
}

func TestBatcherUnbatcherRoundTrip(t *testing.T) {
	c, _ := testDB(t, 777)
	it, err := Build(c, &plan.SeqScan{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	// Tuple -> batch (size 10 forces many partial batches) -> tuple.
	round := Unbatch(AsBatch(it, 10))
	defer round.Close()
	n := 0
	for {
		_, done, err := round.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		n++
	}
	if n != 777 {
		t.Fatalf("round trip yielded %d rows, want 777", n)
	}
}

// dualIter implements both iterator contracts; the adapters must return
// it unchanged instead of stacking wrapper layers.
type dualIter struct{}

func (dualIter) Schema() *value.Schema            { return nil }
func (dualIter) Next() (value.Tuple, bool, error) { return nil, true, nil }
func (dualIter) NextBatch() (Batch, bool, error)  { return nil, true, nil }
func (dualIter) Close()                           {}

func TestAdaptersAreIdentityOnDualIterators(t *testing.T) {
	d := dualIter{}
	if AsBatch(d, 1) != BatchIterator(d) {
		t.Fatal("AsBatch must not wrap an iterator that is already batch-native")
	}
	if Unbatch(d) != Iterator(d) {
		t.Fatal("Unbatch must not wrap a batch iterator that is already tuple-native")
	}
}

func TestBatchFilterSkipsEmptyBatches(t *testing.T) {
	c, _ := testDB(t, 2000)
	// A predicate matching nothing: the filter must keep pulling child
	// batches and report done, never an empty batch.
	p := &plan.Filter{Child: &plan.SeqScan{Table: "t"},
		Pred: expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(1000)}}
	it, err := BuildBatch(c, p, Options{DOP: 2, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if rows := drainBatches(t, it); len(rows) != 0 {
		t.Fatalf("filter matching nothing returned %d rows", len(rows))
	}
}

func TestParallelScanCloseWithoutDrain(t *testing.T) {
	c, tb := testDB(t, 5000)
	_ = c
	for i := 0; i < 20; i++ {
		it := newParallelScan(context.Background(), tb, &plan.SeqScan{Table: tb.Name}, Options{DOP: 4, MorselPages: 1}.fill())
		if _, done, err := it.NextBatch(); err != nil || done {
			t.Fatalf("iter %d: first batch: done=%v err=%v", i, done, err)
		}
		it.Close() // abandon mid-scan; workers must wind down without leaking
	}
}
