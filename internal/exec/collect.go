// Per-operator runtime collection: when a Collector is attached to the
// execution Options, every batch operator is wrapped with a lightweight
// shim that counts rows, batches, and wall time per plan node, scan
// leaves attribute their page/tuple I/O to the query's own Counters
// (instead of only the heap's global ones), and morsel-scan workers
// report per-worker time at DOP>1. The numbers feed EXPLAIN ANALYZE,
// the engine's metrics series, and the server's slow-query log.
package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"minequery/internal/expr"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// OpStats accumulates one plan operator's actuals over a query
// execution. Fields are atomic so scan leaves fed by concurrent morsel
// workers and single-threaded consumers share one update path.
type OpStats struct {
	// Rows and Batches count the operator's output; Calls counts
	// NextBatch invocations (including the final exhausted one).
	Rows    atomic.Int64
	Batches atomic.Int64
	Calls   atomic.Int64
	// WallNanos is time spent inside this operator's NextBatch,
	// inclusive of its children (subtract the child's WallNanos for
	// self time).
	WallNanos atomic.Int64
	// EnvRejected / ResidRejected split a filter's rejected rows by
	// cause when envelope attribution is enabled: rows the added
	// envelope pruned that the query's own predicate would have kept,
	// vs rows the original (residual) predicate rejects anyway.
	EnvRejected   atomic.Int64
	ResidRejected atomic.Int64
}

// WorkerStats is one morsel-scan worker's share of a parallel scan.
type WorkerStats struct {
	Morsels   atomic.Int64
	Rows      atomic.Int64
	WallNanos atomic.Int64
}

// Collector gathers one query execution's runtime statistics. Create
// one per execution with NewCollector and attach it via Options; a nil
// Collector (the zero Options) runs the uninstrumented operators.
type Collector struct {
	// IO is the query's own storage accounting: scan leaves add their
	// page and tuple reads here as well as to the heap's global
	// counters, so overlapping queries never pollute each other's
	// ExecStats.
	IO storage.Counters

	// Retries counts transient storage/seek failures absorbed by the
	// retry layer during this execution — failures the query survived
	// without surfacing an error or falling back.
	Retries atomic.Int64

	// AggMerges counts partial-aggregate state merges performed while
	// combining per-worker (and, at the coordinator, per-shard) tables
	// into the final aggregate.
	AggMerges atomic.Int64

	mu      sync.Mutex
	ops     map[plan.Node]*OpStats
	workers []*WorkerStats
	envBase map[plan.Node]expr.Expr
	vecInfo map[plan.Node]*VecScanInfo
}

// VecTermActual is one top-level predicate term's measured counters from
// a columnar scan: candidate rows it was evaluated on and rows that
// passed (Evaluated - Passed were rejected by this term).
type VecTermActual struct {
	Index     int
	Term      string
	Evaluated int64
	Passed    int64
}

// VecScanInfo reports a columnar scan leaf's actuals: how many column
// groups it processed and, for a fused filter, the adaptive term
// ordering outcome. Its presence for a scan node is what marks the
// execution as having actually run columnar (the plan flag alone is only
// a hint).
type VecScanInfo struct {
	Groups int64
	// Combiner is "AND" or "OR" for a multi-term predicate, "" otherwise.
	Combiner string
	// Order is the frozen evaluation order as original term indices.
	Order []int
	// Terms lists per-term counters in original index order.
	Terms []VecTermActual
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{ops: map[plan.Node]*OpStats{}, envBase: map[plan.Node]expr.Expr{}}
}

// Op returns (creating on first use) the stats slot for a plan node.
func (c *Collector) Op(n plan.Node) *OpStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.ops[n]
	if !ok {
		st = &OpStats{}
		c.ops[n] = st
	}
	return st
}

// SetEnvelopeBaseline enables rejection attribution for a Filter node:
// base is the predicate the query would have applied without envelope
// augmentation. Rejected rows that base accepts are counted as pruned
// by the envelope; rows base also rejects are residual rejections.
// Attribution costs one extra predicate evaluation per rejected row, so
// it is only enabled for EXPLAIN ANALYZE runs.
func (c *Collector) SetEnvelopeBaseline(n plan.Node, base expr.Expr) {
	c.mu.Lock()
	c.envBase[n] = base
	c.mu.Unlock()
}

// envBaseline returns the attribution predicate for a filter node, or
// nil when attribution is off.
func (c *Collector) envBaseline(n plan.Node) expr.Expr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.envBase[n]
}

// setVecInfo records a columnar scan leaf's actuals.
func (c *Collector) setVecInfo(n plan.Node, info *VecScanInfo) {
	c.mu.Lock()
	if c.vecInfo == nil {
		c.vecInfo = map[plan.Node]*VecScanInfo{}
	}
	c.vecInfo[n] = info
	c.mu.Unlock()
}

// VecInfo returns the columnar actuals for a scan node, or nil when the
// node executed on the row path.
func (c *Collector) VecInfo(n plan.Node) *VecScanInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vecInfo[n]
}

// newWorker registers one morsel-scan worker.
func (c *Collector) newWorker() *WorkerStats {
	ws := &WorkerStats{}
	c.mu.Lock()
	c.workers = append(c.workers, ws)
	c.mu.Unlock()
	return ws
}

// Workers snapshots the registered morsel-scan workers.
func (c *Collector) Workers() []*WorkerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*WorkerStats(nil), c.workers...)
}

// ioOf returns the per-query counter sink, or nil without a collector.
func ioOf(c *Collector) *storage.Counters {
	if c == nil {
		return nil
	}
	return &c.IO
}

// instrumented wraps a batch operator with per-node accounting. The
// clock cost is two monotonic reads per batch (not per row), so the
// instrumented tree stays within a few percent of the bare one.
type instrumented struct {
	child BatchIterator
	st    *OpStats
}

func (i *instrumented) Schema() *value.Schema { return i.child.Schema() }

func (i *instrumented) NextBatch() (Batch, bool, error) {
	start := time.Now()
	b, done, err := i.child.NextBatch()
	i.st.WallNanos.Add(time.Since(start).Nanoseconds())
	i.st.Calls.Add(1)
	if err == nil && !done {
		i.st.Batches.Add(1)
		i.st.Rows.Add(int64(len(b)))
	}
	return b, done, err
}

func (i *instrumented) Close() { i.child.Close() }
