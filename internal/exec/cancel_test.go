package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"minequery/internal/catalog"
	"minequery/internal/expr"
	"minequery/internal/plan"
	"minequery/internal/value"
)

// cancelFixture builds a table large enough to span many morsels.
func cancelFixture(t *testing.T, rows int) (*catalog.Catalog, *catalog.Table) {
	t.Helper()
	cat := catalog.New()
	tb, err := cat.CreateTable("big", value.MustSchema(
		value.Column{Name: "id", Kind: value.KindInt},
		value.Column{Name: "payload", Kind: value.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := tb.Insert(value.Tuple{value.Int(int64(i)), value.Str(fmt.Sprintf("row-%06d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return cat, tb
}

func TestRunCtxPreCancelled(t *testing.T) {
	cat, _ := cancelFixture(t, 2000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, dop := range []int{1, 4} {
		_, _, err := RunCtx(ctx, cat, &plan.SeqScan{Table: "big"}, Options{DOP: dop})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("DOP %d: err = %v, want context.Canceled", dop, err)
		}
	}
}

func TestCancelMidParallelScan(t *testing.T) {
	cat, tb := cancelFixture(t, 30000)
	if tb.Heap.PageCount() < 8 {
		t.Fatalf("fixture too small: %d pages", tb.Heap.PageCount())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it, err := BuildBatchCtx(ctx, cat, &plan.SeqScan{Table: "big"}, Options{DOP: 4, MorselPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, done, err := it.NextBatch(); done || err != nil {
		t.Fatalf("first batch: done=%v err=%v", done, err)
	}
	cancel()
	// The iterator must surface the cancellation as an error, never run
	// to clean completion.
	var total int
	for {
		b, done, err := it.NextBatch()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			return
		}
		if done {
			t.Fatal("scan completed cleanly despite cancellation")
		}
		total += len(b)
		if total > 40000 {
			t.Fatal("runaway iterator")
		}
	}
}

func TestDeadlineMidScan(t *testing.T) {
	cat, _ := cancelFixture(t, 30000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// Burn the deadline so expiry is guaranteed regardless of scan speed.
	time.Sleep(2 * time.Millisecond)
	for _, dop := range []int{1, 4} {
		root := &plan.Filter{
			Child: &plan.SeqScan{Table: "big"},
			Pred:  expr.Cmp{Col: "id", Op: expr.OpGe, Val: value.Int(0)},
		}
		_, _, err := RunCtx(ctx, cat, root, Options{DOP: dop})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("DOP %d: err = %v, want context.DeadlineExceeded", dop, err)
		}
	}
}

// indexedCancelFixture is cancelFixture plus an index on id, so index
// access paths (seek, RID fetch, union) can be cancelled too.
func indexedCancelFixture(t *testing.T, rows int) (*catalog.Catalog, *catalog.Table) {
	t.Helper()
	cat, tb := cancelFixture(t, rows)
	if _, err := cat.CreateIndex("ix_id", "big", "id"); err != nil {
		t.Fatal(err)
	}
	tb.Analyze()
	return cat, tb
}

// fullSeek covers the whole index: enough RIDs that both the seek's
// stride check and the RID fetch's stride check are guaranteed to run.
func fullSeek() *plan.IndexSeek { return &plan.IndexSeek{Table: "big", Index: "ix_id"} }

func TestPreCancelledIndexSeek(t *testing.T) {
	cat, _ := indexedCancelFixture(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := RunCtx(ctx, cat, fullSeek(), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCancelDuringRIDFetch(t *testing.T) {
	cat, _ := indexedCancelFixture(t, 20000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	it, err := BuildBatchCtx(ctx, cat, fullSeek(), Options{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	// The seeks succeed while the context is live; cancel once the RID
	// fetch is underway and insist the iterator stops with the typed
	// error instead of fetching the remaining 20k RIDs.
	if _, done, err := it.NextBatch(); done || err != nil {
		t.Fatalf("first batch: done=%v err=%v", done, err)
	}
	cancel()
	var total int
	for {
		b, done, err := it.NextBatch()
		if err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			return
		}
		if done {
			t.Fatal("RID fetch completed cleanly despite cancellation")
		}
		total += len(b)
		if total > 25000 {
			t.Fatal("runaway iterator")
		}
	}
}

func TestDeadlineMidIndexUnion(t *testing.T) {
	cat, _ := indexedCancelFixture(t, 20000)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // burn the deadline deterministically
	// The union checks the context between arms and inside each seek's
	// stride, so an expired deadline must surface before any fetching.
	union := &plan.IndexUnion{Table: "big", Seeks: []*plan.IndexSeek{
		{Table: "big", Index: "ix_id", Lo: &plan.Bound{Val: value.Int(0)}, Hi: &plan.Bound{Val: value.Int(5000)}},
		{Table: "big", Index: "ix_id", Lo: &plan.Bound{Val: value.Int(10000)}, Hi: &plan.Bound{Val: value.Int(15000)}},
	}}
	_, _, err := RunCtx(ctx, cat, union, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelStopsWorkers asserts promptness: after cancellation the
// morsel workers stop claiming work, so the heap's page-read counter
// stops well short of a full scan.
func TestCancelStopsWorkers(t *testing.T) {
	cat, tb := cancelFixture(t, 150000)
	pages := tb.Heap.PageCount()
	ctx, cancel := context.WithCancel(context.Background())
	it, err := BuildBatchCtx(ctx, cat, &plan.SeqScan{Table: "big"}, Options{DOP: 2, MorselPages: 1, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if _, done, err := it.NextBatch(); done || err != nil {
		t.Fatalf("first batch: done=%v err=%v", done, err)
	}
	cancel()
	for {
		if _, done, err := it.NextBatch(); err != nil || done {
			break
		}
	}
	// Give stragglers a moment to observe cancellation, then snapshot.
	time.Sleep(20 * time.Millisecond)
	read := tb.Heap.Stats().SeqPageReads
	if read >= int64(pages) {
		t.Errorf("workers read %d of %d pages after cancellation; expected an early stop", read, pages)
	}
}
