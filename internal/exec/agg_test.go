package exec

import (
	"fmt"
	"strings"
	"testing"

	"minequery/internal/agg"
	"minequery/internal/core"
	"minequery/internal/expr"
	"minequery/internal/mining"
	"minequery/internal/mining/dtree"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// aggPlan wraps a child pipeline in the canonical Final-over-Partial
// pair.
func aggPlan(child plan.Node, groupBy []string, items []agg.Item) *plan.HashAgg {
	return &plan.HashAgg{
		Child:   &plan.HashAgg{Child: child, Phase: plan.AggPartial, GroupBy: groupBy, Aggs: items},
		Phase:   plan.AggFinal,
		GroupBy: groupBy,
		Aggs:    items,
	}
}

func rowsToStrings(rows []value.Tuple) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	return out
}

// TestAggPathEquivalence pins the tentpole invariant at the exec layer:
// the fused morsel runner (row heap, DOP>1), the fused columnar runner
// (DOP 1 and >1), and the generic runner (DOP 1) finalize byte-identical
// rows in identical order for grouped and ungrouped aggregates, with and
// without a filter.
func TestAggPathEquivalence(t *testing.T) {
	cc, tb := testDB(t, 4000)
	if err := tb.EnableColumnar(); err != nil {
		t.Fatal(err)
	}

	items := []agg.Item{
		{Func: agg.None, Col: "cat"},
		{Func: agg.Count, Star: true},
		{Func: agg.Sum, Col: "num"},
		{Func: agg.Min, Col: "num"},
		{Func: agg.Max, Col: "num"},
		{Func: agg.Avg, Col: "num"},
	}
	ungrouped := []agg.Item{
		{Func: agg.Count, Star: true},
		{Func: agg.Sum, Col: "num"},
		{Func: agg.Avg, Col: "num"},
	}
	pred := expr.NewAnd(
		expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(10)},
		expr.Cmp{Col: "num", Op: expr.OpLe, Val: value.Int(90)},
	)

	type shape struct {
		name    string
		groupBy []string
		items   []agg.Item
		filter  expr.Expr
	}
	shapes := []shape{
		{"grouped", []string{"cat"}, items, nil},
		{"grouped-filtered", []string{"cat"}, items, pred},
		{"ungrouped", nil, ungrouped, nil},
		{"ungrouped-filtered-empty", nil, ungrouped, expr.FalseExpr{}},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			build := func(columnar bool) plan.Node {
				var child plan.Node = &plan.SeqScan{Table: "t", Columnar: columnar}
				if sh.filter != nil {
					child = &plan.Filter{Child: child, Pred: sh.filter}
				}
				return aggPlan(child, sh.groupBy, sh.items)
			}
			want, _, err := RunOpts(cc, build(false), Options{DOP: 1, BatchSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			if sh.groupBy == nil && len(want) != 1 {
				t.Fatalf("ungrouped aggregate produced %d rows, want 1", len(want))
			}
			wantS := rowsToStrings(want)
			for _, cfg := range []struct {
				name     string
				columnar bool
				dop      int
			}{
				{"morsel-dop4", false, 4},
				{"columnar-dop1", true, 1},
				{"columnar-dop4", true, 4},
				{"generic-dop1", false, 1},
			} {
				got, _, err := RunOpts(cc, build(cfg.columnar), Options{DOP: cfg.dop, BatchSize: 64})
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				gotS := rowsToStrings(got)
				if strings.Join(gotS, "\n") != strings.Join(wantS, "\n") {
					t.Fatalf("%s differs from serial run\n got %v\nwant %v", cfg.name, gotS, wantS)
				}
			}
		})
	}
}

// TestAggOverPredictedColumn runs the paper's pipeline under an
// aggregate: GROUP BY a model's predicted class with a residual class
// filter, checking the fused paths against a hand-computed oracle.
func TestAggOverPredictedColumn(t *testing.T) {
	cc, tb := testDB(t, 3000)
	if err := tb.EnableColumnar(); err != nil {
		t.Fatal(err)
	}

	ts := &mining.TrainSet{Schema: value.MustSchema(value.Column{Name: "num", Kind: value.KindInt})}
	tb.Heap.Scan(func(_ storage.RID, rec []byte) bool {
		row, err := value.DecodeTuple(rec)
		if err != nil {
			t.Fatal(err)
		}
		ts.Rows = append(ts.Rows, value.Tuple{row[2]})
		cls := "low"
		if row[2].AsInt() >= 90 {
			cls = "high"
		}
		ts.Labels = append(ts.Labels, value.Str(cls))
		return true
	})
	m, err := dtree.Train("dt", "cls", ts, dtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	der, err := core.UpperEnvelopes(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cc.RegisterModel(m, der.Envelopes)

	items := []agg.Item{
		{Func: agg.None, Col: "dt.cls"},
		{Func: agg.Count, Star: true},
		{Func: agg.Sum, Col: "num"},
	}
	build := func(columnar bool) plan.Node {
		return aggPlan(&plan.Filter{
			Child: &plan.Predict{Child: &plan.SeqScan{Table: "t", Columnar: columnar}, Model: "dt", As: "dt.cls"},
			Pred:  expr.Cmp{Col: "dt.cls", Op: expr.OpEq, Val: value.Str("high")},
		}, []string{"dt.cls"}, items)
	}

	want, _, err := RunOpts(cc, build(false), Options{DOP: 1, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1 {
		t.Fatalf("expected one 'high' group, got %d rows", len(want))
	}
	wantS := rowsToStrings(want)
	for _, cfg := range []struct {
		name     string
		columnar bool
		dop      int
	}{
		{"morsel-dop4", false, 4},
		{"columnar-dop1", true, 1},
		{"columnar-dop4", true, 4},
	} {
		got, _, err := RunOpts(cc, build(cfg.columnar), Options{DOP: cfg.dop, BatchSize: 64})
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if gotS := rowsToStrings(got); strings.Join(gotS, "\n") != strings.Join(wantS, "\n") {
			t.Fatalf("%s differs\n got %v\nwant %v", cfg.name, gotS, wantS)
		}
	}
}

// TestAggOutputSchema checks the Final's schema: select-list order,
// canonical aggregate names, finalized kinds.
func TestAggOutputSchema(t *testing.T) {
	cc, _ := testDB(t, 100)
	p := aggPlan(&plan.SeqScan{Table: "t"}, []string{"cat"}, []agg.Item{
		{Func: agg.Count, Star: true},
		{Func: agg.None, Col: "cat"},
		{Func: agg.Avg, Col: "num"},
	})
	_, schema, err := RunOpts(cc, p, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := "(count(*) INT, cat TEXT, avg(num) FLOAT)"
	if schema.String() != want {
		t.Fatalf("schema %s, want %s", schema, want)
	}
}

// TestRunPartialAggWire checks the shard half of scatter-gather: the
// partial states of two disjoint partition scans, carried over the
// wire encoding, merge and finalize identically to one full run.
func TestRunPartialAggWire(t *testing.T) {
	cc, _ := testDB(t, 2000)
	groupBy := []string{"cat"}
	items := []agg.Item{
		{Func: agg.None, Col: "cat"},
		{Func: agg.Count, Star: true},
		{Func: agg.Sum, Col: "num"},
		{Func: agg.Avg, Col: "num"},
	}
	full := aggPlan(&plan.SeqScan{Table: "t"}, groupBy, items)
	want, _, err := RunOpts(cc, full, Options{DOP: 4, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}

	// Split the table by a predicate into two "shards", run each as a
	// partial, and merge the wires like the coordinator would.
	lo := &plan.HashAgg{Child: &plan.Filter{
		Child: &plan.SeqScan{Table: "t"},
		Pred:  expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(50)},
	}, Phase: plan.AggPartial, GroupBy: groupBy, Aggs: items}
	hi := &plan.HashAgg{Child: &plan.Filter{
		Child: &plan.SeqScan{Table: "t"},
		Pred:  expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(50)},
	}, Phase: plan.AggPartial, GroupBy: groupBy, Aggs: items}

	tabLo, err := RunPartialAgg(nil, cc, lo, Options{DOP: 4})
	if err != nil {
		t.Fatal(err)
	}
	tabHi, err := RunPartialAgg(nil, cc, hi, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	merged := agg.NewTable(tabLo.Spec)
	if err := merged.MergeWire(tabLo.EncodeWire()); err != nil {
		t.Fatal(err)
	}
	if err := merged.MergeWire(tabHi.EncodeWire()); err != nil {
		t.Fatal(err)
	}
	got := merged.Finalize()
	if fmt.Sprint(rowsToStrings(got)) != fmt.Sprint(rowsToStrings(want)) {
		t.Fatalf("scatter-gathered aggregate differs\n got %v\nwant %v", got, want)
	}
	if merged.Merges() != 2 {
		t.Fatalf("merges = %d, want 2", merged.Merges())
	}
}

// TestAggCollectorStats checks the manually-fed stats of the fused
// paths: the scan leaf's rows, the partial's group count, and the
// merge counter all surface through the Collector.
func TestAggCollectorStats(t *testing.T) {
	cc, _ := testDB(t, 1000)
	p := aggPlan(&plan.SeqScan{Table: "t"}, []string{"cat"}, []agg.Item{
		{Func: agg.None, Col: "cat"}, {Func: agg.Count, Star: true},
	})
	col := NewCollector()
	_, _, err := RunOpts(cc, p, Options{DOP: 4, BatchSize: 64, MorselPages: 1, Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	part := p.Child.(*plan.HashAgg)
	scan := part.Child.(*plan.SeqScan)
	if got := col.Op(scan).Rows.Load(); got != 1000 {
		t.Fatalf("scan rows = %d, want 1000", got)
	}
	if got := col.Op(part).Rows.Load(); got != 8 {
		t.Fatalf("partial groups = %d, want 8", got)
	}
	if col.AggMerges.Load() == 0 {
		t.Fatal("no partial merges recorded at DOP 4")
	}
}
