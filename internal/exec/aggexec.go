// Aggregate execution: the HashAgg(Final) operator and the partial-
// aggregate producers it pushes down into the scan.
//
// The Final operator never receives row batches from a Partial
// iterator. Instead it owns a partial runner chosen from the shape of
// the Partial's child pipeline:
//
//   - a fused columnar runner when the leaf is a columnar SeqScan with
//     a fresh sidecar (selection vectors feed accumulators directly,
//     or materialize rows first when prediction joins sit above the
//     scan);
//   - a fused morsel runner for row-heap SeqScans at DOP > 1 (each
//     worker claims page-range morsels and accumulates into its own
//     state);
//   - a generic runner that drains the ordinary batch pipeline for
//     everything else (index paths, constant scans, DOP 1).
//
// Every runner produces per-worker agg.Tables merged into one. Because
// partial states are order-independent (see internal/agg), the merged
// result — and therefore the finalized output — is byte-identical at
// any DOP, on any path, to the serial run.
package exec

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"minequery/internal/agg"
	"minequery/internal/catalog"
	"minequery/internal/exec/vec"
	"minequery/internal/expr"
	"minequery/internal/fault"
	"minequery/internal/mining"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// aggChain is a partial aggregate's input pipeline when it has the
// canonical pushdown shape: [post-filter] over [prediction joins] over
// [scan filter] over a SeqScan.
type aggChain struct {
	scan       *plan.SeqScan
	scanFilter *plan.Filter
	predicts   []*plan.Predict // bottom-up (application) order
	postFilter *plan.Filter
}

// extractAggChain recognizes the pushdown shape, or returns nil to
// route the partial to the generic runner.
func extractAggChain(n plan.Node) *aggChain {
	c := &aggChain{}
	if f, ok := n.(*plan.Filter); ok {
		c.postFilter = f
		n = f.Child
	}
	for {
		p, ok := n.(*plan.Predict)
		if !ok {
			break
		}
		c.predicts = append([]*plan.Predict{p}, c.predicts...)
		n = p.Child
	}
	if f, ok := n.(*plan.Filter); ok {
		c.scanFilter = f
		n = f.Child
	}
	s, ok := n.(*plan.SeqScan)
	if !ok {
		return nil
	}
	c.scan = s
	// With no prediction joins a single filter sits directly on the
	// scan: treat it as the scan filter (it evaluates over the base
	// schema, so the columnar runner can fuse it).
	if len(c.predicts) == 0 && c.scanFilter == nil && c.postFilter != nil {
		c.scanFilter, c.postFilter = c.postFilter, nil
	}
	return c
}

// aggPipeline is the shared, worker-independent state of a fused
// partial runner: resolved schemas and model bindings plus the
// collector slots the fused path must feed manually (the fused
// operators replace the instrumented row operators).
type aggPipeline struct {
	chain  *aggChain
	table  *catalog.Table
	schema *value.Schema // input schema of the partial (post-predict)
	baseW  int           // table schema width
	binds  []mining.Binding

	scanPred expr.Expr // chain.scanFilter's predicate, or nil
	postPred expr.Expr // chain.postFilter's predicate, or nil

	scanSt     *OpStats
	scanFiltSt *OpStats
	scanBase   expr.Expr
	predSts    []*OpStats
	postSt     *OpStats
	postBase   expr.Expr
}

func newAggPipeline(c *catalog.Catalog, chain *aggChain, opts Options) (*aggPipeline, error) {
	t, ok := c.Table(chain.scan.Table)
	if !ok {
		return nil, fmt.Errorf("exec: no table %q", chain.scan.Table)
	}
	p := &aggPipeline{chain: chain, table: t, schema: t.Schema, baseW: t.Schema.Len()}
	for _, pr := range chain.predicts {
		me, ok := c.Model(pr.Model)
		if !ok {
			return nil, fmt.Errorf("exec: no model %q", pr.Model)
		}
		if pr.Version != 0 && me.Version != pr.Version {
			return nil, fmt.Errorf("exec: plan invalidated: model %q is v%d, plan was optimized at v%d",
				pr.Model, me.Version, pr.Version)
		}
		b, sch, err := predictBinding(p.schema, me, pr.As)
		if err != nil {
			return nil, err
		}
		p.binds = append(p.binds, b)
		p.schema = sch
	}
	if chain.scanFilter != nil {
		p.scanPred = chain.scanFilter.Pred
	}
	if chain.postFilter != nil {
		p.postPred = chain.postFilter.Pred
	}
	if col := opts.Collector; col != nil {
		p.scanSt = col.Op(chain.scan)
		if chain.scanFilter != nil {
			p.scanFiltSt = col.Op(chain.scanFilter)
			p.scanBase = col.envBaseline(chain.scanFilter)
		}
		for _, pr := range chain.predicts {
			p.predSts = append(p.predSts, col.Op(pr))
		}
		if chain.postFilter != nil {
			p.postSt = col.Op(chain.postFilter)
			p.postBase = col.envBaseline(chain.postFilter)
		}
	}
	return p, nil
}

// aggCounts is one worker's operator counters, flushed to the shared
// atomic OpStats once per morsel or column group.
type aggCounts struct {
	scanRows               int64
	filtKept               int64
	envRej, residRej       int64
	predicted              int64
	postKept               int64
	postEnvRej, postResRej int64
}

// flush publishes the counters. countScan is false on the columnar
// path, whose selectGroup already accounts the scan and scan filter.
func (p *aggPipeline) flush(c *aggCounts, countScan bool) {
	if countScan && p.scanSt != nil {
		p.scanSt.Rows.Add(c.scanRows)
		p.scanSt.Batches.Add(1)
	}
	if countScan && p.scanFiltSt != nil {
		p.scanFiltSt.Rows.Add(c.filtKept)
		p.scanFiltSt.EnvRejected.Add(c.envRej)
		p.scanFiltSt.ResidRejected.Add(c.residRej)
	}
	for _, st := range p.predSts {
		st.Rows.Add(c.predicted)
	}
	if p.postSt != nil {
		p.postSt.Rows.Add(c.postKept)
		p.postSt.EnvRejected.Add(c.postEnvRej)
		p.postSt.ResidRejected.Add(c.postResRej)
	}
	*c = aggCounts{}
}

// aggWorker is one producer's private accumulation state.
type aggWorker struct {
	p    *aggPipeline
	tab  *agg.Table
	row  value.Tuple   // full-width (post-predict) row buffer
	bufs []value.Tuple // per-binding PredictInto scratch
	cnt  aggCounts
}

func (p *aggPipeline) newWorker(spec *agg.Spec) *aggWorker {
	w := &aggWorker{p: p, tab: agg.NewTable(spec), row: make(value.Tuple, p.schema.Len())}
	for _, b := range p.binds {
		w.bufs = append(w.bufs, make(value.Tuple, len(b.Ordinals)))
	}
	return w
}

// processRow runs the full per-row pipeline over the base row already
// in w.row[:baseW]: scan filter, prediction joins, post filter,
// accumulate. (agg.Table.Add copies what it keeps, so the buffer is
// reusable immediately.)
func (w *aggWorker) processRow() {
	p := w.p
	w.cnt.scanRows++
	if p.scanPred != nil {
		base := w.row[:p.baseW]
		if !p.scanPred.Eval(p.table.Schema, base) {
			if p.scanBase != nil && p.scanFiltSt != nil {
				if p.scanBase.Eval(p.table.Schema, base) {
					w.cnt.envRej++
				} else {
					w.cnt.residRej++
				}
			}
			return
		}
		w.cnt.filtKept++
	}
	w.finishRow()
}

// finishRow is processRow after the scan filter — the entry point for
// the columnar path, whose selection vector already applied it.
func (w *aggWorker) finishRow() {
	p := w.p
	for i, b := range p.binds {
		w.row[p.baseW+i] = b.PredictInto(w.row[:p.baseW+i], w.bufs[i])
	}
	if len(p.binds) > 0 {
		w.cnt.predicted++
	}
	if p.postPred != nil {
		if !p.postPred.Eval(p.schema, w.row) {
			if p.postBase != nil && p.postSt != nil {
				if p.postBase.Eval(p.schema, w.row) {
					w.cnt.postEnvRej++
				} else {
					w.cnt.postResRej++
				}
			}
			return
		}
		w.cnt.postKept++
	}
	w.tab.Add(w.row)
}

// aggRunner produces the merged partial state for one execution.
type aggRunner interface {
	run(spec *agg.Spec) (*agg.Table, error)
	close()
}

// ---------------------------------------------------------------------
// Generic runner: drain the ordinary (instrumented) batch pipeline.

type genericAggRun struct {
	ctx   context.Context
	child BatchIterator
}

func (g *genericAggRun) run(spec *agg.Spec) (*agg.Table, error) {
	tab := agg.NewTable(spec)
	for {
		if err := ctxErr(g.ctx); err != nil {
			return nil, err
		}
		b, done, err := g.child.NextBatch()
		if err != nil {
			return nil, err
		}
		if done {
			return tab, nil
		}
		for _, t := range b {
			tab.Add(t)
		}
	}
}

func (g *genericAggRun) close() { g.child.Close() }

// ---------------------------------------------------------------------
// Morsel runner: row-heap partial aggregation at DOP > 1.

type morselAggRun struct {
	ctx  context.Context
	p    *aggPipeline
	opts Options
}

func (m *morselAggRun) run(spec *agg.Spec) (*agg.Table, error) {
	t := m.p.table
	morsels := morselRanges(t.PartitionPageRanges(m.p.chain.scan.Partitions), m.opts.MorselPages)
	workers := m.opts.DOP
	if workers > len(morsels) {
		workers = len(morsels)
	}
	if workers < 1 {
		workers = 1
	}
	claim := new(atomic.Int64)
	cancel := new(atomic.Bool)
	tabs := make([]*agg.Table, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		w := m.p.newWorker(spec)
		tabs[wi] = w.tab
		var ws *WorkerStats
		if m.opts.Collector != nil {
			ws = m.opts.Collector.newWorker()
		}
		wg.Add(1)
		go func(wi int, w *aggWorker) {
			defer wg.Done()
			errs[wi] = m.worker(w, morsels, claim, cancel, ws)
		}(wi, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctxErr(m.ctx); err != nil {
		return nil, err
	}
	out := tabs[0]
	for _, tb := range tabs[1:] {
		out.Merge(tb)
	}
	return out, nil
}

// worker claims morsels off the shared cursor, mirroring scanWorker's
// fault surface: SiteMorselClaim fires per claim, and pages are read
// one per retry attempt so a transient failure cannot double-count
// rows into the accumulators.
func (m *morselAggRun) worker(w *aggWorker, morsels [][2]int, claim *atomic.Int64, cancel *atomic.Bool, ws *WorkerStats) error {
	t := m.p.table
	io := ioOf(m.opts.Collector)
	onRetry := m.opts.onRetry()
	done := m.ctx.Done()
	stopped := func() bool {
		if cancel.Load() {
			return true
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	fail := func(err error) error {
		cancel.Store(true)
		return err
	}
	for {
		mi := int(claim.Add(1) - 1)
		if mi >= len(morsels) {
			return nil
		}
		if stopped() {
			return nil // run() re-checks the ctx after the join
		}
		if ferr := m.opts.Faults.Hit(fault.SiteMorselClaim); ferr != nil {
			return fail(fmt.Errorf("exec: aggregate scan %s morsel %d: %w", t.Name, mi, ferr))
		}
		var start time.Time
		if ws != nil {
			start = time.Now()
		}
		var decodeErr error
		decode := func(_ storage.RID, rec []byte) bool {
			tup, err := value.DecodeTuple(rec)
			if err != nil {
				decodeErr = fmt.Errorf("exec: scan %s: %w", t.Name, err)
				return false
			}
			copy(w.row, tup)
			w.processRow()
			return true
		}
		for pi := morsels[mi][0]; pi < morsels[mi][1]; pi++ {
			if stopped() {
				return nil
			}
			page := pi
			if err := fault.Retry(m.ctx, m.opts.Clock, m.opts.Retry, func() error {
				return t.Heap.ScanPagesInto(io, page, page+1, decode)
			}, onRetry); err != nil {
				return fail(fmt.Errorf("exec: scan %s: %w", t.Name, err))
			}
			if decodeErr != nil {
				return fail(decodeErr)
			}
		}
		if ws != nil {
			ws.Morsels.Add(1)
			ws.Rows.Add(w.cnt.scanRows)
			ws.WallNanos.Add(time.Since(start).Nanoseconds())
		}
		m.p.flush(&w.cnt, true)
	}
}

func (m *morselAggRun) close() {}

// ---------------------------------------------------------------------
// Columnar runner: selection vectors feed accumulators directly.

type vecAggRun struct {
	ctx    context.Context
	p      *aggPipeline
	core   *vecCore
	groups []*storage.ColGroup
	opts   Options
}

// newVecAggRun builds the fused columnar partial runner, or returns
// nil — routing to the morsel/generic runner — when the sidecar is
// stale or missing or the scan filter's shape defeats vectorization.
func newVecAggRun(ctx context.Context, p *aggPipeline, opts Options) *vecAggRun {
	t := p.table
	cs := t.ColumnStore()
	if cs == nil {
		return nil
	}
	var vp *vec.Pred
	if p.scanPred != nil {
		c, ok := vec.Compile(p.scanPred, t.Schema, t.Stats())
		if !ok {
			return nil
		}
		vp = c
	}
	groups := cs.Groups
	if parts := p.chain.scan.Partitions; parts != nil {
		keep := make(map[int]bool, len(parts))
		for _, pt := range parts {
			keep[pt] = true
		}
		groups = nil
		for _, g := range cs.Groups {
			if keep[g.Part] {
				groups = append(groups, g)
			}
		}
	}
	core := &vecCore{table: t, pred: vp, opts: opts, io: ioOf(opts.Collector)}
	if col := opts.Collector; col != nil {
		core.scanSt = col.Op(p.chain.scan)
		if p.chain.scanFilter != nil {
			if base := col.envBaseline(p.chain.scanFilter); base != nil {
				core.filtSt, core.base = col.Op(p.chain.scanFilter), base
			}
		}
	}
	return &vecAggRun{ctx: ctx, p: p, core: core, groups: groups, opts: opts}
}

func (v *vecAggRun) run(spec *agg.Spec) (*agg.Table, error) {
	// Direct accumulation needs only the spec's input ordinals; with
	// prediction joins or a residual the whole row is materialized.
	var need []int
	if len(v.p.binds) == 0 && v.p.postPred == nil {
		seen := make([]bool, v.p.baseW)
		for _, g := range spec.GroupBy {
			seen[g.Ord] = true
		}
		for _, it := range spec.Items {
			if it.Ord >= 0 {
				seen[it.Ord] = true
			}
		}
		need = make([]int, 0, len(seen))
		for o, s := range seen {
			if s {
				need = append(need, o)
			}
		}
	}

	// Serial warmup in measurement mode, exactly like vecScan, so the
	// frozen term order (and the EXPLAIN ANALYZE counters) match the
	// non-aggregated columnar scan over the same predicate.
	w0 := v.p.newWorker(spec)
	sc := vec.NewScratch()
	warm := 0
	if v.core.pred != nil {
		warm = warmupGroups
	}
	gi := 0
	for gi < len(v.groups) && gi < warm {
		if err := ctxErr(v.ctx); err != nil {
			return nil, err
		}
		v.aggGroup(w0, v.groups[gi], sc, need)
		gi++
	}
	if v.core.pred != nil {
		v.core.pred.Freeze()
	}

	rem := v.groups[gi:]
	tab := w0.tab
	if v.opts.DOP > 1 && len(rem) > 1 {
		workers := v.opts.DOP
		if workers > len(rem) {
			workers = len(rem)
		}
		claim := new(atomic.Int64)
		cancel := new(atomic.Bool)
		tabs := make([]*agg.Table, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for wi := 0; wi < workers; wi++ {
			w := v.p.newWorker(spec)
			tabs[wi] = w.tab
			var ws *WorkerStats
			if v.opts.Collector != nil {
				ws = v.opts.Collector.newWorker()
			}
			wg.Add(1)
			go func(wi int, w *aggWorker) {
				defer wg.Done()
				errs[wi] = v.worker(w, rem, claim, cancel, ws, need)
			}(wi, w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for _, tb := range tabs {
			tab.Merge(tb)
		}
	} else {
		for ; gi < len(v.groups); gi++ {
			if err := ctxErr(v.ctx); err != nil {
				return nil, err
			}
			v.aggGroup(w0, v.groups[gi], sc, need)
		}
	}
	if err := ctxErr(v.ctx); err != nil {
		return nil, err
	}
	if col := v.opts.Collector; col != nil {
		col.setVecInfo(v.p.chain.scan, v.core.info())
	}
	return tab, nil
}

func (v *vecAggRun) worker(w *aggWorker, groups []*storage.ColGroup, claim *atomic.Int64, cancel *atomic.Bool, ws *WorkerStats, need []int) error {
	sc := vec.NewScratch()
	done := v.ctx.Done()
	stopped := func() bool {
		if cancel.Load() {
			return true
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	for {
		gi := int(claim.Add(1) - 1)
		if gi >= len(groups) {
			return nil
		}
		if stopped() {
			return nil // run() re-checks the ctx after the join
		}
		if ferr := v.opts.Faults.Hit(fault.SiteMorselClaim); ferr != nil {
			cancel.Store(true)
			return fmt.Errorf("exec: columnar aggregate scan %s group %d: %w", v.p.table.Name, gi, ferr)
		}
		var start time.Time
		if ws != nil {
			start = time.Now()
		}
		v.aggGroup(w, groups[gi], sc, need)
		if ws != nil {
			ws.Morsels.Add(1)
			ws.Rows.Add(int64(groups[gi].N))
			ws.WallNanos.Add(time.Since(start).Nanoseconds())
		}
	}
}

// aggGroup accumulates one column group's surviving rows. need, when
// non-nil, lists the only base ordinals the spec reads (the direct
// path); nil materializes the whole row for predicts and the residual.
func (v *vecAggRun) aggGroup(w *aggWorker, g *storage.ColGroup, sc *vec.Scratch, need []int) {
	sel, n := v.core.selectGroup(g, sc)
	p := v.p
	for k := 0; k < n; k++ {
		ri := k
		if sel != nil {
			ri = int(sel[k])
		}
		if need != nil {
			for _, ci := range need {
				w.row[ci] = g.Cols[ci].Value(ri)
			}
		} else {
			for ci := 0; ci < p.baseW; ci++ {
				w.row[ci] = g.Cols[ci].Value(ri)
			}
		}
		w.finishRow()
	}
	p.flush(&w.cnt, false)
}

func (v *vecAggRun) close() {}

// ---------------------------------------------------------------------
// The Final operator.

// newPartialRunner picks the partial producer for a Partial node's
// pipeline and resolves the aggregation spec against its input schema.
// Shared by the Final operator and the engine's partial-only mode (a
// shard answering a scatter-gathered aggregate).
func newPartialRunner(ctx context.Context, c *catalog.Catalog, part *plan.HashAgg, opts Options) (aggRunner, *agg.Spec, error) {
	var (
		runner   aggRunner
		inSchema *value.Schema
	)
	if chain := extractAggChain(part.Child); chain != nil {
		p, err := newAggPipeline(c, chain, opts)
		if err != nil {
			return nil, nil, err
		}
		if chain.scan.Columnar {
			if v := newVecAggRun(ctx, p, opts); v != nil {
				runner, inSchema = v, p.schema
			}
		}
		if runner == nil && opts.DOP > 1 {
			runner, inSchema = &morselAggRun{ctx: ctx, p: p, opts: opts}, p.schema
		}
	}
	if runner == nil {
		child, err := buildBatchNode(ctx, c, part.Child, opts)
		if err != nil {
			return nil, nil, err
		}
		runner, inSchema = &genericAggRun{ctx: ctx, child: child}, child.Schema()
	}
	spec, err := agg.Resolve(inSchema, part.GroupBy, part.Aggs)
	if err != nil {
		runner.close()
		return nil, nil, fmt.Errorf("exec: %w", err)
	}
	return runner, spec, nil
}

// RunPartialAgg executes just the Partial half of a split aggregation
// and returns the merged partial state — what a shard sends back for
// the coordinator to merge.
func RunPartialAgg(ctx context.Context, c *catalog.Catalog, part *plan.HashAgg, opts Options) (*agg.Table, error) {
	opts = opts.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	runner, spec, err := newPartialRunner(ctx, c, part, opts)
	if err != nil {
		return nil, err
	}
	defer runner.close()
	tab, err := runner.run(spec)
	if err != nil {
		return nil, err
	}
	reportPartial(opts.Collector, part, tab)
	return tab, nil
}

// reportPartial feeds the Partial node's stats (it never runs as a
// batch iterator) and the merge counter.
func reportPartial(col *Collector, part *plan.HashAgg, tab *agg.Table) {
	if col == nil {
		return
	}
	col.AggMerges.Add(tab.Merges())
	st := col.Op(part)
	st.Rows.Add(int64(tab.Groups()))
	st.Batches.Add(1)
	st.Calls.Add(1)
}

// batchFinalAgg merges the partial producer's state and emits the
// finalized rows. It is a full pipeline breaker: the first NextBatch
// runs the entire partial aggregation.
type batchFinalAgg struct {
	runner aggRunner
	part   *plan.HashAgg
	spec   *agg.Spec
	out    *value.Schema
	col    *Collector
	size   int
	rows   []value.Tuple
	pos    int
	ran    bool
	err    error
}

func newBatchFinalAgg(ctx context.Context, c *catalog.Catalog, final *plan.HashAgg, opts Options) (BatchIterator, error) {
	part, ok := final.Child.(*plan.HashAgg)
	if !ok || part.Phase != plan.AggPartial {
		return nil, fmt.Errorf("exec: HashAgg(final) requires a HashAgg(partial) child, got %T", final.Child)
	}
	runner, spec, err := newPartialRunner(ctx, c, part, opts)
	if err != nil {
		return nil, err
	}
	out, err := spec.OutSchema()
	if err != nil {
		runner.close()
		return nil, fmt.Errorf("exec: %w", err)
	}
	return &batchFinalAgg{
		runner: runner, part: part, spec: spec, out: out,
		col: opts.Collector, size: opts.BatchSize,
	}, nil
}

func (f *batchFinalAgg) Schema() *value.Schema { return f.out }

func (f *batchFinalAgg) NextBatch() (Batch, bool, error) {
	if f.err != nil {
		return nil, false, f.err
	}
	if !f.ran {
		f.ran = true
		tab, err := f.runner.run(f.spec)
		if err != nil {
			f.err = err
			return nil, false, err
		}
		reportPartial(f.col, f.part, tab)
		f.rows = tab.Finalize()
	}
	if f.pos >= len(f.rows) {
		return nil, true, nil
	}
	end := f.pos + f.size
	if end > len(f.rows) {
		end = len(f.rows)
	}
	b := Batch(f.rows[f.pos:end])
	f.pos = end
	return b, false, nil
}

func (f *batchFinalAgg) Close() {
	f.runner.close()
	f.pos = len(f.rows)
}
