// Ordered merge for scatter-gather: the cluster coordinator's row
// combiner. Range-sharded tables preserve the single-node partitioned
// scan order (partition order, then insertion order within each), so
// merging shard results is pure concatenation in shard-index order —
// no comparator, no re-sort, and therefore byte-identical output to a
// single node holding the union of the shards.
package exec

// MergeOrdered concatenates per-source result slices in source order,
// honoring limit (< 0: no limit). It never truncates mid-source-slice
// semantics: rows keep their within-source order, and the cut point is
// exactly where a single-node LIMIT would have stopped.
func MergeOrdered[T any](parts [][]T, limit int64) []T {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	if limit >= 0 && int64(n) > limit {
		n = int(limit)
	}
	out := make([]T, 0, n)
	for _, p := range parts {
		for _, row := range p {
			if limit >= 0 && int64(len(out)) >= limit {
				return out
			}
			out = append(out, row)
		}
	}
	return out
}
