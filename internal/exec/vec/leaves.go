package vec

import (
	"math"

	"minequery/internal/expr"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// leaf supplies the no-op freeze and static cost shared by all leaf
// operators. Costs are relative per-row weights used only to break
// near-ties in the adaptive ordering.
type leaf struct{ c float64 }

func (leaf) freeze()         {}
func (l leaf) cost() float64 { return l.c }

// opHolds reports whether a three-way comparison result satisfies op —
// the same switch expr.Cmp.Eval runs on value.Compare's result.
func opHolds(op expr.CmpOp, cmp int) bool {
	switch op {
	case expr.OpEq:
		return cmp == 0
	case expr.OpNe:
		return cmp != 0
	case expr.OpLt:
		return cmp < 0
	case expr.OpLe:
		return cmp <= 0
	case expr.OpGt:
		return cmp > 0
	case expr.OpGe:
		return cmp >= 0
	}
	return false
}

// compileCmp lowers `col op literal` to a kind-specialized leaf. Every
// case of value.Compare's kind matrix is covered statically, so no
// per-row interface dispatch remains.
func compileCmp(x expr.Cmp, s *value.Schema) node {
	ord := s.Ordinal(x.Col)
	if ord < 0 || x.Val.IsNull() {
		return falseNode{}
	}
	colKind := s.Col(ord).Kind
	valKind := x.Val.Kind()
	colNum := colKind == value.KindInt || colKind == value.KindFloat
	valNum := valKind == value.KindInt || valKind == value.KindFloat
	switch {
	case colKind == value.KindNull:
		// Every stored value is NULL; comparisons are uniformly false.
		return falseNode{}
	case colKind == value.KindInt && valKind == value.KindInt:
		return &intCmpNode{leaf: leaf{1}, ord: ord, op: x.Op, v: x.Val.AsInt()}
	case colNum && valNum:
		// Mixed numeric kinds compare as float64, exactly like
		// value.Compare (including its NaN-compares-equal behaviour,
		// which the float loops reproduce by deriving the result from
		// (a<b, a>b) rather than ==).
		if colKind == value.KindInt {
			return &intAsFloatCmpNode{leaf: leaf{1}, ord: ord, op: x.Op, v: x.Val.AsFloat()}
		}
		return &floatCmpNode{leaf: leaf{1}, ord: ord, op: x.Op, v: x.Val.AsFloat()}
	case colKind == value.KindString && valKind == value.KindString:
		return &strCmpNode{leaf: leaf{1.2}, ord: ord, op: x.Op, v: x.Val.AsString()}
	case colKind == value.KindBool && valKind == value.KindBool:
		return &boolCmpNode{leaf: leaf{1}, ord: ord, op: x.Op, v: x.Val.AsBool()}
	default:
		// Cross-kind, not both numeric: value.Compare orders by kind
		// tag, so the result is the same for every non-NULL row.
		cmp := -1
		if colKind > valKind {
			cmp = 1
		}
		if opHolds(x.Op, cmp) {
			return &notNullNode{leaf: leaf{0.5}, ord: ord}
		}
		return falseNode{}
	}
}

// compileIn lowers `col IN (...)` to a set-membership leaf. List
// elements that can never equal a value of the column's kind are
// dropped at compile time.
func compileIn(x expr.In, s *value.Schema) node {
	ord := s.Ordinal(x.Col)
	if ord < 0 {
		return falseNode{}
	}
	colKind := s.Col(ord).Kind
	switch colKind {
	case value.KindInt, value.KindFloat:
		// Exact-int matches stay in an int64 set (value.Compare compares
		// INT/INT exactly); everything else numeric goes through the
		// float64 set, matching Compare's widening. A NaN list element
		// compares equal to every number under Compare, making the
		// predicate "IS NOT NULL".
		ints := make(map[int64]struct{})
		floats := make(map[float64]struct{})
		for _, w := range x.Vals {
			switch {
			case w.Kind() == value.KindInt && colKind == value.KindInt:
				ints[w.AsInt()] = struct{}{}
			case w.Kind() == value.KindInt || w.Kind() == value.KindFloat:
				f := w.AsFloat()
				if math.IsNaN(f) {
					return &notNullNode{leaf: leaf{0.5}, ord: ord}
				}
				floats[f] = struct{}{}
			}
		}
		if len(ints) == 0 && len(floats) == 0 {
			return falseNode{}
		}
		if colKind == value.KindInt {
			return &intInNode{leaf: leaf{1.3}, ord: ord, ints: ints, floats: floats}
		}
		return &floatInNode{leaf: leaf{1.3}, ord: ord, floats: floats}
	case value.KindString:
		set := make(map[string]struct{})
		for _, w := range x.Vals {
			if w.Kind() == value.KindString {
				set[w.AsString()] = struct{}{}
			}
		}
		if len(set) == 0 {
			return falseNode{}
		}
		return &strInNode{leaf: leaf{1.3}, ord: ord, set: set}
	case value.KindBool:
		var hasTrue, hasFalse bool
		for _, w := range x.Vals {
			if w.Kind() == value.KindBool {
				if w.AsBool() {
					hasTrue = true
				} else {
					hasFalse = true
				}
			}
		}
		if !hasTrue && !hasFalse {
			return falseNode{}
		}
		return &boolInNode{leaf: leaf{1}, ord: ord, hasTrue: hasTrue, hasFalse: hasFalse}
	default: // KindNull column: every value NULL, IN is false.
		return falseNode{}
	}
}

// compileColCmp lowers a column-to-column comparison. Kept generic —
// these appear in transitivity-derived predicates, not hot scan loops.
func compileColCmp(x expr.ColCmp, s *value.Schema) node {
	a, b := s.Ordinal(x.ColA), s.Ordinal(x.ColB)
	if a < 0 || b < 0 {
		return falseNode{}
	}
	return &colCmpNode{leaf: leaf{2}, a: a, b: b, op: x.Op}
}

// notNullNode passes rows whose column value is non-NULL; the lowering
// of comparisons whose outcome is constant for any non-NULL value.
type notNullNode struct {
	leaf
	ord int
}

func (n *notNullNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	nulls := g.Cols[n.ord].Nulls
	for _, i := range sel {
		if !nulls[i] {
			out = append(out, i)
		}
	}
	return out
}

type intCmpNode struct {
	leaf
	ord int
	op  expr.CmpOp
	v   int64
}

func (n *intCmpNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	col := &g.Cols[n.ord]
	xs, nulls, v := col.Ints, col.Nulls, n.v
	switch n.op {
	case expr.OpEq:
		for _, i := range sel {
			if !nulls[i] && xs[i] == v {
				out = append(out, i)
			}
		}
	case expr.OpNe:
		for _, i := range sel {
			if !nulls[i] && xs[i] != v {
				out = append(out, i)
			}
		}
	case expr.OpLt:
		for _, i := range sel {
			if !nulls[i] && xs[i] < v {
				out = append(out, i)
			}
		}
	case expr.OpLe:
		for _, i := range sel {
			if !nulls[i] && xs[i] <= v {
				out = append(out, i)
			}
		}
	case expr.OpGt:
		for _, i := range sel {
			if !nulls[i] && xs[i] > v {
				out = append(out, i)
			}
		}
	case expr.OpGe:
		for _, i := range sel {
			if !nulls[i] && xs[i] >= v {
				out = append(out, i)
			}
		}
	}
	return out
}

// floatOpLoop runs one comparison loop over float64 payloads. The
// operators are expressed through (a<v, a>v) so NaN operands produce
// cmp==0 exactly as value.Compare does.
func floatOpLoop(out []int32, sel []int32, nulls []bool, at func(int32) float64, op expr.CmpOp, v float64) []int32 {
	switch op {
	case expr.OpEq:
		for _, i := range sel {
			if !nulls[i] {
				a := at(i)
				if !(a < v) && !(a > v) {
					out = append(out, i)
				}
			}
		}
	case expr.OpNe:
		for _, i := range sel {
			if !nulls[i] {
				a := at(i)
				if a < v || a > v {
					out = append(out, i)
				}
			}
		}
	case expr.OpLt:
		for _, i := range sel {
			if !nulls[i] && at(i) < v {
				out = append(out, i)
			}
		}
	case expr.OpLe:
		for _, i := range sel {
			if !nulls[i] && !(at(i) > v) {
				out = append(out, i)
			}
		}
	case expr.OpGt:
		for _, i := range sel {
			if !nulls[i] && at(i) > v {
				out = append(out, i)
			}
		}
	case expr.OpGe:
		for _, i := range sel {
			if !nulls[i] && !(at(i) < v) {
				out = append(out, i)
			}
		}
	}
	return out
}

type floatCmpNode struct {
	leaf
	ord int
	op  expr.CmpOp
	v   float64
}

func (n *floatCmpNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	col := &g.Cols[n.ord]
	xs := col.Floats
	return floatOpLoop(sc.get(len(sel)), sel, col.Nulls, func(i int32) float64 { return xs[i] }, n.op, n.v)
}

// intAsFloatCmpNode compares an INT column against a FLOAT literal the
// way value.Compare does: both widened to float64.
type intAsFloatCmpNode struct {
	leaf
	ord int
	op  expr.CmpOp
	v   float64
}

func (n *intAsFloatCmpNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	col := &g.Cols[n.ord]
	xs := col.Ints
	return floatOpLoop(sc.get(len(sel)), sel, col.Nulls, func(i int32) float64 { return float64(xs[i]) }, n.op, n.v)
}

type strCmpNode struct {
	leaf
	ord int
	op  expr.CmpOp
	v   string
}

func (n *strCmpNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	col := &g.Cols[n.ord]
	xs, nulls, v := col.Strs, col.Nulls, n.v
	switch n.op {
	case expr.OpEq:
		for _, i := range sel {
			if !nulls[i] && xs[i] == v {
				out = append(out, i)
			}
		}
	case expr.OpNe:
		for _, i := range sel {
			if !nulls[i] && xs[i] != v {
				out = append(out, i)
			}
		}
	case expr.OpLt:
		for _, i := range sel {
			if !nulls[i] && xs[i] < v {
				out = append(out, i)
			}
		}
	case expr.OpLe:
		for _, i := range sel {
			if !nulls[i] && xs[i] <= v {
				out = append(out, i)
			}
		}
	case expr.OpGt:
		for _, i := range sel {
			if !nulls[i] && xs[i] > v {
				out = append(out, i)
			}
		}
	case expr.OpGe:
		for _, i := range sel {
			if !nulls[i] && xs[i] >= v {
				out = append(out, i)
			}
		}
	}
	return out
}

type boolCmpNode struct {
	leaf
	ord int
	op  expr.CmpOp
	v   bool
}

func (n *boolCmpNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	col := &g.Cols[n.ord]
	xs, nulls, v := col.Bools, col.Nulls, n.v
	// value.Compare orders false < true; each operator reduces to a
	// boolean formula over (x, v).
	for _, i := range sel {
		if nulls[i] {
			continue
		}
		x := xs[i]
		var keep bool
		switch n.op {
		case expr.OpEq:
			keep = x == v
		case expr.OpNe:
			keep = x != v
		case expr.OpLt:
			keep = !x && v
		case expr.OpLe:
			keep = !x || v
		case expr.OpGt:
			keep = x && !v
		case expr.OpGe:
			keep = x || !v
		}
		if keep {
			out = append(out, i)
		}
	}
	return out
}

type intInNode struct {
	leaf
	ord    int
	ints   map[int64]struct{}
	floats map[float64]struct{}
}

func (n *intInNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	col := &g.Cols[n.ord]
	xs, nulls := col.Ints, col.Nulls
	for _, i := range sel {
		if nulls[i] {
			continue
		}
		if _, ok := n.ints[xs[i]]; ok {
			out = append(out, i)
			continue
		}
		if len(n.floats) > 0 {
			if _, ok := n.floats[float64(xs[i])]; ok {
				out = append(out, i)
			}
		}
	}
	return out
}

type floatInNode struct {
	leaf
	ord    int
	floats map[float64]struct{}
}

func (n *floatInNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	col := &g.Cols[n.ord]
	xs, nulls := col.Floats, col.Nulls
	for _, i := range sel {
		if nulls[i] {
			continue
		}
		x := xs[i]
		// A stored NaN compares equal to every number under
		// value.Compare, so it matches any non-empty list.
		if _, ok := n.floats[x]; ok || x != x {
			out = append(out, i)
		}
	}
	return out
}

type strInNode struct {
	leaf
	ord int
	set map[string]struct{}
}

func (n *strInNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	col := &g.Cols[n.ord]
	xs, nulls := col.Strs, col.Nulls
	for _, i := range sel {
		if nulls[i] {
			continue
		}
		if _, ok := n.set[xs[i]]; ok {
			out = append(out, i)
		}
	}
	return out
}

type boolInNode struct {
	leaf
	ord               int
	hasTrue, hasFalse bool
}

func (n *boolInNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	col := &g.Cols[n.ord]
	xs, nulls := col.Bools, col.Nulls
	for _, i := range sel {
		if nulls[i] {
			continue
		}
		if (xs[i] && n.hasTrue) || (!xs[i] && n.hasFalse) {
			out = append(out, i)
		}
	}
	return out
}

type colCmpNode struct {
	leaf
	a, b int
	op   expr.CmpOp
}

func (n *colCmpNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := sc.get(len(sel))
	ca, cb := &g.Cols[n.a], &g.Cols[n.b]
	for _, i := range sel {
		if ca.Nulls[i] || cb.Nulls[i] {
			continue
		}
		if opHolds(n.op, value.Compare(ca.Value(int(i)), cb.Value(int(i)))) {
			out = append(out, i)
		}
	}
	return out
}
