// Package vec evaluates predicate expressions over column groups with
// selection vectors: each operator consumes an ascending list of
// candidate row indices and returns the sublist that satisfies it,
// using tight typed loops per column kind instead of per-tuple decode
// and interface dispatch (the MonetDB/X100 execution style).
//
// On top of the vectorized evaluators sits BestD-style adaptive term
// ordering: every AND/OR node measures its children's observed pass
// rates online during a warmup phase (all terms evaluated, no
// short-circuiting, counters fed), then Freeze picks an evaluation
// order — conjuncts by descending rejection-per-cost, disjuncts by
// descending acceptance-per-cost — and evaluation switches to
// short-circuiting under the frozen order. The warmup is driven
// single-threaded by the scan operator before it fans out workers, so
// the chosen order and all per-term counters are deterministic at any
// degree of parallelism.
//
// Semantics contract: for every expression the compiler accepts,
// filtering a selection is EXACTLY row-wise expr.Eval — including SQL
// NULL-comparison behaviour (NULL operands make comparisons false),
// cross-kind comparisons, and NOT over NULL (which Eval defines as
// plain negation). The property tests in this package enforce the
// contract against the row-at-a-time oracle.
package vec

import (
	"math"
	"sort"
	"sync/atomic"

	"minequery/internal/expr"
	"minequery/internal/stats"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// node is one compiled predicate operator. filter returns the subset of
// sel (ascending row indices into g) satisfying the node; the returned
// slice is always a scratch-owned buffer distinct from sel, and sel is
// never modified.
type node interface {
	filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32
	freeze()
	cost() float64
}

// Scratch is the per-evaluator buffer pool. Each concurrent consumer of
// a Pred (each scan worker) must use its own Scratch; the Pred itself is
// shared.
type Scratch struct {
	free [][]int32
	iota []int32
	last []int32
}

// NewScratch returns an empty scratch pool.
func NewScratch() *Scratch { return &Scratch{} }

func (sc *Scratch) get(n int) []int32 {
	if len(sc.free) > 0 {
		b := sc.free[len(sc.free)-1]
		sc.free = sc.free[:len(sc.free)-1]
		if cap(b) >= n {
			return b[:0]
		}
	}
	return make([]int32, 0, n)
}

func (sc *Scratch) put(b []int32) {
	if b == nil {
		return
	}
	sc.free = append(sc.free, b)
}

// identity returns the full selection [0, n): every row of the group.
func (sc *Scratch) identity(n int) []int32 {
	for len(sc.iota) < n {
		sc.iota = append(sc.iota, int32(len(sc.iota)))
	}
	return sc.iota[:n]
}

// TermStat is one top-level term's measured counters: how many
// candidate rows it was evaluated on and how many passed. Rejected is
// Evaluated - Passed. Counters cover both the warmup and frozen phases
// and are deterministic at any DOP.
type TermStat struct {
	Index     int
	Term      string
	Evaluated int64
	Passed    int64
}

// Report describes a predicate's adaptive-ordering outcome.
type Report struct {
	// Combiner is "AND" or "OR" for a top-level conjunction or
	// disjunction, "" for a single-term predicate.
	Combiner string
	// Order is the frozen evaluation order as original term indices.
	Order []int
	// Terms lists per-term counters in original index order.
	Terms []TermStat
}

// Pred is a compiled, adaptively-ordered predicate over column groups.
// The lifecycle is: Compile → FilterGroup over the warmup groups
// (single-threaded) → Freeze → FilterGroup from any number of
// goroutines, each with its own Scratch.
type Pred struct {
	root     node
	terms    []string // top-level term renderings for Report
	combiner string
}

// FilterGroup returns the row indices of g satisfying the predicate, in
// ascending order. The returned slice is owned by sc and valid only
// until the next FilterGroup call with the same Scratch.
func (p *Pred) FilterGroup(g *storage.ColGroup, sc *Scratch) []int32 {
	sc.put(sc.last)
	sc.last = nil
	out := p.root.filter(g, sc.identity(g.N), sc)
	sc.last = out
	return out
}

// Freeze ends the warmup phase: every AND/OR node ranks its terms from
// the measured counters (falling back to the histogram-seeded estimates
// for terms warmup never reached) and switches to short-circuiting
// evaluation under the frozen order. Must be called before FilterGroup
// is used concurrently.
func (p *Pred) Freeze() { p.root.freeze() }

// Report returns the chosen term order and per-term counters for the
// top-level combiner.
func (p *Pred) Report() Report {
	r := Report{Combiner: p.combiner}
	switch x := p.root.(type) {
	case *andNode:
		r.Order = append([]int(nil), x.order...)
		for i := range x.kids {
			r.Terms = append(r.Terms, TermStat{
				Index: i, Term: p.terms[i],
				Evaluated: x.stats[i].eval.Load(), Passed: x.stats[i].pass.Load(),
			})
		}
	case *orNode:
		r.Order = append([]int(nil), x.order...)
		for i := range x.kids {
			r.Terms = append(r.Terms, TermStat{
				Index: i, Term: p.terms[i],
				Evaluated: x.stats[i].eval.Load(), Passed: x.stats[i].pass.Load(),
			})
		}
	default:
		// Single-term predicate: no ordering decision to report.
	}
	return r
}

// termStats is one child's online counters plus its static seed.
type termStats struct {
	eval atomic.Int64
	pass atomic.Int64
	// seedSel is the histogram-estimated selectivity used when warmup
	// produced no measurements for this term.
	seedSel float64
}

// passRate returns the observed pass fraction, or the seed estimate
// when the term was never evaluated.
func (ts *termStats) passRate() float64 {
	e := ts.eval.Load()
	if e == 0 {
		return ts.seedSel
	}
	return float64(ts.pass.Load()) / float64(e)
}

// rankOrder sorts term indices by score descending (stable; ties keep
// original order), the shared ranking for AND and OR nodes.
func rankOrder(n int, score func(i int) float64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return score(order[a]) > score(order[b])
	})
	return order
}

// andNode is an adaptively-ordered conjunction: successive refinement
// of the selection, cheapest-most-rejecting terms first once frozen.
type andNode struct {
	kids   []node
	stats  []termStats
	order  []int
	frozen bool
}

func (n *andNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	if n.frozen {
		cur := sel
		owned := false
		for _, k := range n.order {
			if len(cur) == 0 {
				break
			}
			n.stats[k].eval.Add(int64(len(cur)))
			next := n.kids[k].filter(g, cur, sc)
			n.stats[k].pass.Add(int64(len(next)))
			if owned {
				sc.put(cur)
			}
			cur, owned = next, true
		}
		if !owned {
			// Zero terms executed (empty input): return an owned copy to
			// keep the ownership invariant.
			return append(sc.get(len(cur)), cur...)
		}
		return cur
	}
	// Warmup: evaluate EVERY term over the full incoming selection so
	// each term's pass rate is measured on identical input, then
	// intersect. Output is identical to the frozen mode (intersection
	// is order-insensitive); only the work done differs.
	cur := append(sc.get(len(sel)), sel...)
	for i, kid := range n.kids {
		n.stats[i].eval.Add(int64(len(sel)))
		out := kid.filter(g, sel, sc)
		n.stats[i].pass.Add(int64(len(out)))
		inter := intersect(sc, cur, out)
		sc.put(cur)
		sc.put(out)
		cur = inter
	}
	return cur
}

func (n *andNode) freeze() {
	// Highest rejection-per-cost first: score = (1 - passRate) / cost.
	n.order = rankOrder(len(n.kids), func(i int) float64 {
		return (1 - n.stats[i].passRate()) / n.kids[i].cost()
	})
	for _, k := range n.kids {
		k.freeze()
	}
	n.frozen = true
}

func (n *andNode) cost() float64 {
	c := 0.0
	for _, k := range n.kids {
		c += k.cost()
	}
	return c
}

// orNode is an adaptively-ordered disjunction: once frozen, terms run
// highest acceptance-per-cost first, each over only the rows no earlier
// term accepted (per-batch short-circuiting).
type orNode struct {
	kids   []node
	stats  []termStats
	order  []int
	frozen bool
}

func (n *orNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	outs := make([][]int32, 0, len(n.kids))
	if n.frozen {
		rem := sel
		remOwned := false
		for _, k := range n.order {
			if len(rem) == 0 {
				break
			}
			n.stats[k].eval.Add(int64(len(rem)))
			out := n.kids[k].filter(g, rem, sc)
			n.stats[k].pass.Add(int64(len(out)))
			outs = append(outs, out)
			next := diff(sc, rem, out)
			if remOwned {
				sc.put(rem)
			}
			rem, remOwned = next, true
		}
		if remOwned {
			sc.put(rem)
		}
	} else {
		// Warmup: every term over the full selection (measured on
		// identical input); the union dedups overlaps.
		for i, kid := range n.kids {
			n.stats[i].eval.Add(int64(len(sel)))
			out := kid.filter(g, sel, sc)
			n.stats[i].pass.Add(int64(len(out)))
			outs = append(outs, out)
		}
	}
	res := mergeUnion(sc, outs, len(sel))
	for _, o := range outs {
		sc.put(o)
	}
	return res
}

func (n *orNode) freeze() {
	// Highest acceptance-per-cost first: score = passRate / cost.
	n.order = rankOrder(len(n.kids), func(i int) float64 {
		return n.stats[i].passRate() / n.kids[i].cost()
	})
	for _, k := range n.kids {
		k.freeze()
	}
	n.frozen = true
}

func (n *orNode) cost() float64 {
	c := 0.0
	for _, k := range n.kids {
		c += k.cost()
	}
	return c
}

// notNode inverts its child by ordered set difference, which matches
// expr.Not's plain-negation semantics exactly (a NULL comparison is
// false, so its negation is true).
type notNode struct{ kid node }

func (n *notNode) filter(g *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	out := n.kid.filter(g, sel, sc)
	res := diff(sc, sel, out)
	sc.put(out)
	return res
}

func (n *notNode) freeze()       { n.kid.freeze() }
func (n *notNode) cost() float64 { return n.kid.cost() + 0.1 }

// trueNode passes every candidate row.
type trueNode struct{}

func (trueNode) filter(_ *storage.ColGroup, sel []int32, sc *Scratch) []int32 {
	return append(sc.get(len(sel)), sel...)
}
func (trueNode) freeze()       {}
func (trueNode) cost() float64 { return 0.1 }

// falseNode rejects every candidate row.
type falseNode struct{}

func (falseNode) filter(_ *storage.ColGroup, _ []int32, sc *Scratch) []int32 {
	return sc.get(0)
}
func (falseNode) freeze()       {}
func (falseNode) cost() float64 { return 0.1 }

// intersect returns a ∩ b for ascending slices, in a fresh buffer.
func intersect(sc *Scratch, a, b []int32) []int32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := sc.get(n)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// diff returns a \ b for ascending slices, in a fresh buffer.
func diff(sc *Scratch, a, b []int32) []int32 {
	out := sc.get(len(a))
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// mergeUnion k-way merges ascending (possibly overlapping) slices into
// one deduplicated ascending result.
func mergeUnion(sc *Scratch, outs [][]int32, capHint int) []int32 {
	res := sc.get(capHint)
	switch len(outs) {
	case 0:
		return res
	case 1:
		return append(res, outs[0]...)
	}
	idx := make([]int, len(outs))
	for {
		best := int32(math.MaxInt32)
		found := false
		for k, o := range outs {
			if idx[k] < len(o) && o[idx[k]] < best {
				best = o[idx[k]]
				found = true
			}
		}
		if !found {
			return res
		}
		res = append(res, best)
		for k, o := range outs {
			if idx[k] < len(o) && o[idx[k]] == best {
				idx[k]++
			}
		}
	}
}

// seedSelectivity estimates a term's selectivity from table statistics
// (0.5 when unavailable), used only for terms warmup never measured.
func seedSelectivity(ts *stats.TableStats, e expr.Expr) float64 {
	if ts == nil {
		return 0.5
	}
	return ts.Selectivity(e)
}

// Compile builds a vectorized predicate for e against schema s. ts,
// when non-nil, seeds the initial term-selectivity estimates from the
// table's histograms. ok is false when e contains a construct the
// vectorized evaluator does not support; callers then run the row path.
func Compile(e expr.Expr, s *value.Schema, ts *stats.TableStats) (*Pred, bool) {
	root, ok := compileNode(e, s, ts)
	if !ok {
		return nil, false
	}
	p := &Pred{root: root}
	// compileNode collapses single-kid combiners into their child, so the
	// report's term list must be read from the same unwrapped expression
	// the root node was actually built from.
	e = unwrapSingle(e)
	switch x := e.(type) {
	case expr.And:
		if _, isAnd := root.(*andNode); isAnd {
			p.combiner = "AND"
			for _, k := range x.Kids {
				p.terms = append(p.terms, k.String())
			}
			return p, true
		}
	case expr.Or:
		if _, isOr := root.(*orNode); isOr {
			p.combiner = "OR"
			for _, k := range x.Kids {
				p.terms = append(p.terms, k.String())
			}
			return p, true
		}
	}
	p.terms = []string{e.String()}
	return p, true
}

// unwrapSingle strips single-kid And/Or wrappers, mirroring the
// collapse compileNode performs.
func unwrapSingle(e expr.Expr) expr.Expr {
	for {
		switch x := e.(type) {
		case expr.And:
			if len(x.Kids) == 1 {
				e = x.Kids[0]
				continue
			}
		case expr.Or:
			if len(x.Kids) == 1 {
				e = x.Kids[0]
				continue
			}
		}
		return e
	}
}

func compileNode(e expr.Expr, s *value.Schema, ts *stats.TableStats) (node, bool) {
	switch x := e.(type) {
	case expr.TrueExpr:
		return trueNode{}, true
	case expr.FalseExpr:
		return falseNode{}, true
	case expr.Cmp:
		return compileCmp(x, s), true
	case expr.In:
		return compileIn(x, s), true
	case expr.ColCmp:
		return compileColCmp(x, s), true
	case expr.And:
		if len(x.Kids) == 0 {
			return trueNode{}, true
		}
		if len(x.Kids) == 1 {
			return compileNode(x.Kids[0], s, ts)
		}
		n := &andNode{stats: make([]termStats, len(x.Kids))}
		for i, k := range x.Kids {
			kid, ok := compileNode(k, s, ts)
			if !ok {
				return nil, false
			}
			n.kids = append(n.kids, kid)
			n.stats[i].seedSel = seedSelectivity(ts, k)
		}
		return n, true
	case expr.Or:
		if len(x.Kids) == 0 {
			return falseNode{}, true
		}
		if len(x.Kids) == 1 {
			return compileNode(x.Kids[0], s, ts)
		}
		n := &orNode{stats: make([]termStats, len(x.Kids))}
		for i, k := range x.Kids {
			kid, ok := compileNode(k, s, ts)
			if !ok {
				return nil, false
			}
			n.kids = append(n.kids, kid)
			n.stats[i].seedSel = seedSelectivity(ts, k)
		}
		return n, true
	case expr.Not:
		kid, ok := compileNode(x.Kid, s, ts)
		if !ok {
			return nil, false
		}
		return &notNode{kid: kid}, true
	default:
		// Unknown expression implementation: refuse, the caller falls
		// back to the row-at-a-time path.
		return nil, false
	}
}
