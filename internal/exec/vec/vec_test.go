// Property tests pinning the vectorized evaluator to the row-at-a-time
// oracle: for randomized predicates — including upper envelopes derived
// from all five model families — filtering a column group through
// vec.Pred must select EXACTLY the rows expr.Eval accepts, including
// SQL NULL semantics, cross-kind comparisons, IN lists with mixed
// kinds, and NOT over NULL-comparisons. Both evaluation phases
// (warmup/measure and frozen/short-circuit) are held to the contract.
package vec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"minequery/internal/catalog"
	"minequery/internal/core"
	"minequery/internal/exec/vec"
	"minequery/internal/expr"
	"minequery/internal/mining"
	"minequery/internal/mining/cluster"
	"minequery/internal/mining/dtree"
	"minequery/internal/mining/nbayes"
	"minequery/internal/mining/rules"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// fixture is a columnar table plus envelope predicates from all five
// model families trained on its data.
type fixture struct {
	table     *catalog.Table
	cs        *storage.ColumnStore
	envelopes []expr.Expr
}

func buildFixture(t *testing.T, seed int64, rows int) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := value.MustSchema(
		value.Column{Name: "age", Kind: value.KindInt},
		value.Column{Name: "income", Kind: value.KindInt},
		value.Column{Name: "score", Kind: value.KindFloat},
		value.Column{Name: "city", Kind: value.KindString},
		value.Column{Name: "flag", Kind: value.KindBool},
		value.Column{Name: "seg", Kind: value.KindString},
	)
	c := catalog.New()
	tb, err := c.CreateTable("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	maybeNull := func(v value.Value) value.Value {
		if rng.Intn(12) == 0 {
			return value.Null()
		}
		return v
	}
	ts := &mining.TrainSet{Schema: value.MustSchema(
		value.Column{Name: "age", Kind: value.KindInt},
		value.Column{Name: "income", Kind: value.KindInt},
	)}
	for i := 0; i < rows; i++ {
		age := int64(rng.Intn(10))
		income := int64(rng.Intn(8))
		seg := "regular"
		switch {
		case age <= 1 && income >= 6:
			seg = "vip"
		case income <= 1:
			seg = "budget"
		}
		row := value.Tuple{
			maybeNull(value.Int(age)),
			maybeNull(value.Int(income)),
			maybeNull(value.Float(float64(rng.Intn(200)) / 4)),
			maybeNull(value.Str(fmt.Sprintf("c%d", rng.Intn(6)))),
			maybeNull(value.Bool(rng.Intn(2) == 0)),
			value.Str(seg),
		}
		if _, err := tb.Insert(row); err != nil {
			t.Fatal(err)
		}
		// Models train on the non-null feature space; the predicates they
		// yield are still evaluated against the full (nullable) table.
		ts.Rows = append(ts.Rows, value.Tuple{value.Int(age), value.Int(income)})
		ts.Labels = append(ts.Labels, value.Str(seg))
	}
	if err := tb.EnableColumnar(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze("t"); err != nil {
		t.Fatal(err)
	}
	cs := tb.ColumnStore()
	if cs == nil {
		t.Fatal("column store not fresh after EnableColumnar")
	}

	fx := &fixture{table: tb, cs: cs}
	var models []mining.Model
	if m, err := dtree.Train("dt", "seg", ts, dtree.Options{}); err == nil {
		models = append(models, m)
	} else {
		t.Fatalf("dtree: %v", err)
	}
	if m, err := nbayes.Train("nb", "seg", ts, nbayes.Options{}); err == nil {
		models = append(models, m)
	} else {
		t.Fatalf("nbayes: %v", err)
	}
	if m, err := rules.Train("rl", "seg", ts, rules.Options{}); err == nil {
		models = append(models, m)
	} else {
		t.Fatalf("rules: %v", err)
	}
	if m, err := cluster.TrainKMeans("km", "cluster", ts, cluster.Options{K: 3, Seed: seed}); err == nil {
		models = append(models, m)
	} else {
		t.Fatalf("kmeans: %v", err)
	}
	if m, err := cluster.TrainGMM("gm", "component", ts, cluster.Options{K: 2, Seed: seed}); err == nil {
		models = append(models, m)
	} else {
		t.Fatalf("gmm: %v", err)
	}
	for _, m := range models {
		der, err := core.UpperEnvelopes(m, core.DefaultOptions())
		if err != nil {
			t.Fatalf("envelopes for %s: %v", m.Name(), err)
		}
		for _, cl := range m.Classes() {
			if env, ok := der.Envelopes[cl.String()]; ok {
				fx.envelopes = append(fx.envelopes, env)
			}
		}
	}
	if len(fx.envelopes) < 5 {
		t.Fatalf("expected envelopes from all 5 families, got %d", len(fx.envelopes))
	}
	return fx
}

// randValue draws a literal of a random kind — deliberately including
// kinds that mismatch any column, plus NULL.
func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(6) {
	case 0:
		return value.Int(int64(rng.Intn(12) - 1))
	case 1:
		return value.Float(float64(rng.Intn(220))/4 - 1)
	case 2:
		return value.Str(fmt.Sprintf("c%d", rng.Intn(8)))
	case 3:
		return value.Bool(rng.Intn(2) == 0)
	case 4:
		return value.Null()
	default:
		return value.Int(int64(rng.Intn(10)))
	}
}

var predCols = []string{"age", "income", "score", "city", "flag", "seg", "nosuchcol"}

func randCol(rng *rand.Rand) string { return predCols[rng.Intn(len(predCols))] }

var cmpOps = []expr.CmpOp{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}

// randPred generates a random predicate tree exercising every
// expression form the compiler handles: comparisons (including
// cross-kind and NULL literals), IN with mixed-kind/duplicate/empty
// lists, column-column comparisons, TRUE/FALSE constants, NOT, and
// AND/OR with empty, single, and duplicate children.
func randPred(rng *rand.Rand, fx *fixture, depth int) expr.Expr {
	if depth > 0 && rng.Intn(3) > 0 {
		switch rng.Intn(4) {
		case 0: // AND
			kids := randKids(rng, fx, depth)
			return expr.And{Kids: kids}
		case 1: // OR
			kids := randKids(rng, fx, depth)
			return expr.Or{Kids: kids}
		case 2:
			return expr.Not{Kid: randPred(rng, fx, depth-1)}
		default: // a model-family envelope, possibly nested further
			return fx.envelopes[rng.Intn(len(fx.envelopes))]
		}
	}
	switch rng.Intn(6) {
	case 0:
		return expr.TrueExpr{}
	case 1:
		return expr.FalseExpr{}
	case 2:
		vals := make([]value.Value, rng.Intn(5))
		for i := range vals {
			vals[i] = randValue(rng)
		}
		if len(vals) > 1 && rng.Intn(2) == 0 {
			vals = append(vals, vals[0]) // duplicate element
		}
		return expr.In{Col: randCol(rng), Vals: vals}
	case 3:
		return expr.ColCmp{ColA: randCol(rng), Op: cmpOps[rng.Intn(len(cmpOps))], ColB: randCol(rng)}
	default:
		return expr.Cmp{Col: randCol(rng), Op: cmpOps[rng.Intn(len(cmpOps))], Val: randValue(rng)}
	}
}

// randKids draws 0-4 children (empty and single-child combiners are
// legal expr values) with a chance of a duplicated term.
func randKids(rng *rand.Rand, fx *fixture, depth int) []expr.Expr {
	n := rng.Intn(5)
	kids := make([]expr.Expr, 0, n+1)
	for i := 0; i < n; i++ {
		kids = append(kids, randPred(rng, fx, depth-1))
	}
	if len(kids) > 0 && rng.Intn(3) == 0 {
		kids = append(kids, kids[0]) // duplicate term
	}
	return kids
}

// oracleSel returns the selection the row-at-a-time evaluator produces
// for one group.
func oracleSel(fx *fixture, g *storage.ColGroup, pred expr.Expr) []int32 {
	var out []int32
	for i := 0; i < g.N; i++ {
		if pred.Eval(fx.table.Schema, g.TupleAt(i)) {
			out = append(out, int32(i))
		}
	}
	return out
}

func selEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVecMatchesRowOracle is the core equivalence property: vectorized
// == row-at-a-time, exactly, for both the warmup and frozen phases.
func TestVecMatchesRowOracle(t *testing.T) {
	fx := buildFixture(t, 20250807, 5000)
	rng := rand.New(rand.NewSource(99))
	iters := 400
	if testing.Short() {
		iters = 120
	}
	stats := fx.table.Stats()
	for it := 0; it < iters; it++ {
		var pred expr.Expr
		if it%7 == 3 {
			// A bare envelope from one of the model families.
			pred = fx.envelopes[it%len(fx.envelopes)]
		} else {
			pred = randPred(rng, fx, 4)
		}
		ts := stats
		if it%2 == 1 {
			ts = nil // half the runs without histogram seeding
		}
		p, ok := vec.Compile(pred, fx.table.Schema, ts)
		if !ok {
			t.Fatalf("iter %d: compile refused supported predicate %s", it, pred)
		}
		sc := vec.NewScratch()
		for gi, g := range fx.cs.Groups {
			want := oracleSel(fx, g, pred)
			got := p.FilterGroup(g, sc)
			if !selEqual(got, want) {
				t.Fatalf("iter %d group %d (warmup phase): pred %s\n got %d rows, want %d rows",
					it, gi, pred, len(got), len(want))
			}
			if gi == 1 {
				// Freeze mid-stream: remaining groups run the
				// short-circuiting frozen order and must agree too.
				p.Freeze()
			}
		}
		rep := p.Report()
		for _, term := range rep.Terms {
			if term.Passed > term.Evaluated {
				t.Fatalf("iter %d: term %d passed %d > evaluated %d", it, term.Index, term.Passed, term.Evaluated)
			}
		}
		if len(rep.Order) != len(rep.Terms) {
			t.Fatalf("iter %d: order has %d entries for %d terms", it, len(rep.Order), len(rep.Terms))
		}
	}
}

// TestVecScratchReuse pins the buffer-recycling contract: re-filtering
// the same group with the same scratch yields identical selections.
func TestVecScratchReuse(t *testing.T) {
	fx := buildFixture(t, 7, 3000)
	pred := expr.Or{Kids: []expr.Expr{
		expr.Cmp{Col: "age", Op: expr.OpLe, Val: value.Int(2)},
		expr.And{Kids: []expr.Expr{
			expr.Cmp{Col: "income", Op: expr.OpGe, Val: value.Int(6)},
			expr.Not{Kid: expr.Cmp{Col: "city", Op: expr.OpEq, Val: value.Str("c1")}},
		}},
		expr.In{Col: "seg", Vals: []value.Value{value.Str("vip"), value.Str("budget")}},
	}}
	p, ok := vec.Compile(pred, fx.table.Schema, nil)
	if !ok {
		t.Fatal("compile refused predicate")
	}
	sc := vec.NewScratch()
	g := fx.cs.Groups[0]
	first := append([]int32(nil), p.FilterGroup(g, sc)...)
	p.Freeze()
	for i := 0; i < 10; i++ {
		got := p.FilterGroup(g, sc)
		if !selEqual(got, first) {
			t.Fatalf("round %d: selection changed under scratch reuse", i)
		}
	}
	want := oracleSel(fx, g, pred)
	if !selEqual(first, want) {
		t.Fatalf("selection disagrees with oracle: got %d want %d rows", len(first), len(want))
	}
}
