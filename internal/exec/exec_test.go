package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"minequery/internal/catalog"
	"minequery/internal/expr"
	"minequery/internal/plan"
	"minequery/internal/value"
)

func testDB(t *testing.T, rows int) (*catalog.Catalog, *catalog.Table) {
	t.Helper()
	c := catalog.New()
	tb, err := c.CreateTable("t", value.MustSchema(
		value.Column{Name: "id", Kind: value.KindInt},
		value.Column{Name: "cat", Kind: value.KindString},
		value.Column{Name: "num", Kind: value.KindInt},
	))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < rows; i++ {
		_, err := tb.Insert(value.Tuple{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("c%d", r.Intn(8))),
			value.Int(int64(r.Intn(100))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateIndex("ix_cat", "t", "cat"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("ix_cat_num", "t", "cat", "num"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("ix_num", "t", "num"); err != nil {
		t.Fatal(err)
	}
	tb.Analyze()
	return c, tb
}

func runPlan(t *testing.T, c *catalog.Catalog, n plan.Node) []value.Tuple {
	t.Helper()
	rows, _, err := Run(c, n)
	if err != nil {
		t.Fatalf("run %s: %v", plan.Signature(n), err)
	}
	return rows
}

// sortTuples canonicalizes row order for set comparison.
func sortTuples(rows []value.Tuple) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if c := value.Compare(a[k], b[k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func sameRows(a, b []value.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	sortTuples(a)
	sortTuples(b)
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestSeqScanReturnsAllRows(t *testing.T) {
	c, _ := testDB(t, 500)
	rows := runPlan(t, c, &plan.SeqScan{Table: "t"})
	if len(rows) != 500 {
		t.Fatalf("seq scan returned %d rows", len(rows))
	}
}

func TestConstScanReturnsNothing(t *testing.T) {
	c, _ := testDB(t, 50)
	rows := runPlan(t, c, &plan.ConstScan{Table: "t"})
	if len(rows) != 0 {
		t.Fatalf("const scan returned %d rows", len(rows))
	}
}

func TestIndexSeekEquality(t *testing.T) {
	c, _ := testDB(t, 2000)
	pred := expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c3")}
	want := runPlan(t, c, &plan.Filter{Child: &plan.SeqScan{Table: "t"}, Pred: pred})
	got := runPlan(t, c, &plan.IndexSeek{
		Table: "t", Index: "ix_cat", EqVals: []value.Value{value.Str("c3")},
	})
	if len(want) == 0 {
		t.Fatal("test needs matching rows")
	}
	if !sameRows(got, want) {
		t.Fatalf("index seek: %d rows, scan+filter: %d rows", len(got), len(want))
	}
}

func TestIndexSeekCompositeWithRange(t *testing.T) {
	c, _ := testDB(t, 2000)
	pred := expr.NewAnd(
		expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c1")},
		expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(20)},
		expr.Cmp{Col: "num", Op: expr.OpLe, Val: value.Int(40)},
	)
	want := runPlan(t, c, &plan.Filter{Child: &plan.SeqScan{Table: "t"}, Pred: pred})
	seek := &plan.IndexSeek{
		Table: "t", Index: "ix_cat_num",
		EqVals: []value.Value{value.Str("c1")},
		Lo:     &plan.Bound{Val: value.Int(20), Inc: true},
		Hi:     &plan.Bound{Val: value.Int(40), Inc: true},
	}
	got := runPlan(t, c, &plan.Filter{Child: seek, Pred: pred})
	if len(want) == 0 {
		t.Fatal("test needs matching rows")
	}
	if !sameRows(got, want) {
		t.Fatalf("composite seek: %d rows, want %d", len(got), len(want))
	}
}

func TestIndexSeekExclusiveBoundsViaFilter(t *testing.T) {
	c, _ := testDB(t, 2000)
	pred := expr.NewAnd(
		expr.Cmp{Col: "num", Op: expr.OpGt, Val: value.Int(90)},
		expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(95)},
	)
	want := runPlan(t, c, &plan.Filter{Child: &plan.SeqScan{Table: "t"}, Pred: pred})
	seek := &plan.IndexSeek{
		Table: "t", Index: "ix_num",
		Lo: &plan.Bound{Val: value.Int(90), Inc: false},
		Hi: &plan.Bound{Val: value.Int(95), Inc: false},
	}
	got := runPlan(t, c, &plan.Filter{Child: seek, Pred: pred})
	if !sameRows(got, want) {
		t.Fatalf("exclusive range: %d rows, want %d", len(got), len(want))
	}
}

func TestIndexUnionDeduplicates(t *testing.T) {
	c, _ := testDB(t, 2000)
	// Overlapping disjuncts: cat = c2 OR num >= 95 (some rows satisfy both).
	pred := expr.NewOr(
		expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c2")},
		expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(95)},
	)
	want := runPlan(t, c, &plan.Filter{Child: &plan.SeqScan{Table: "t"}, Pred: pred})
	union := &plan.IndexUnion{Table: "t", Seeks: []*plan.IndexSeek{
		{Table: "t", Index: "ix_cat", EqVals: []value.Value{value.Str("c2")}},
		{Table: "t", Index: "ix_num", Lo: &plan.Bound{Val: value.Int(95), Inc: true}},
	}}
	got := runPlan(t, c, &plan.Filter{Child: union, Pred: pred})
	if !sameRows(got, want) {
		t.Fatalf("index union: %d rows, want %d", len(got), len(want))
	}
}

func TestProjectAndLimit(t *testing.T) {
	c, _ := testDB(t, 100)
	p := &plan.Limit{
		Child: &plan.Project{Child: &plan.SeqScan{Table: "t"}, Cols: []string{"cat", "id"}},
		N:     7,
	}
	it, err := Build(c, p)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	if it.Schema().Len() != 2 || it.Schema().Col(0).Name != "cat" {
		t.Fatalf("projected schema = %v", it.Schema())
	}
	n := 0
	for {
		_, done, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		n++
	}
	if n != 7 {
		t.Fatalf("limit returned %d rows", n)
	}
}

func TestProjectMissingColumn(t *testing.T) {
	c, _ := testDB(t, 10)
	_, err := Build(c, &plan.Project{Child: &plan.SeqScan{Table: "t"}, Cols: []string{"nope"}})
	if err == nil {
		t.Error("projecting a missing column should fail")
	}
}

type catModel struct{}

func (catModel) Name() string           { return "catmod" }
func (catModel) PredictColumn() string  { return "cls" }
func (catModel) InputColumns() []string { return []string{"num"} }
func (catModel) Classes() []value.Value {
	return []value.Value{value.Str("low"), value.Str("high")}
}
func (catModel) Predict(in value.Tuple) value.Value {
	if in[0].AsInt() < 50 {
		return value.Str("low")
	}
	return value.Str("high")
}

func TestPredictAppendsColumn(t *testing.T) {
	c, _ := testDB(t, 200)
	c.RegisterModel(catModel{}, nil)
	p := &plan.Predict{Child: &plan.SeqScan{Table: "t"}, Model: "catmod", As: "m.cls"}
	rows, schema, err := Run(c, p)
	if err != nil {
		t.Fatal(err)
	}
	o := schema.Ordinal("m.cls")
	if o != 3 {
		t.Fatalf("predicted column ordinal = %d", o)
	}
	for _, r := range rows {
		want := "low"
		if r[2].AsInt() >= 50 {
			want = "high"
		}
		if r[o].AsString() != want {
			t.Fatalf("row %v predicted %q, want %q", r, r[o].AsString(), want)
		}
	}
}

func TestPredictVersionInvalidation(t *testing.T) {
	c, _ := testDB(t, 10)
	me := c.RegisterModel(catModel{}, nil)
	p := &plan.Predict{Child: &plan.SeqScan{Table: "t"}, Model: "catmod", As: "m.cls", Version: me.Version}
	if _, _, err := Run(c, p); err != nil {
		t.Fatalf("current-version plan should run: %v", err)
	}
	c.RegisterModel(catModel{}, nil) // retrain bumps version
	if _, _, err := Run(c, p); err == nil {
		t.Error("plan pinned to a stale model version must be invalidated")
	}
}

func TestBuildErrors(t *testing.T) {
	c, _ := testDB(t, 10)
	cases := []plan.Node{
		&plan.SeqScan{Table: "missing"},
		&plan.ConstScan{Table: "missing"},
		&plan.IndexSeek{Table: "missing"},
		&plan.IndexSeek{Table: "t", Index: "missing"},
		&plan.IndexSeek{Table: "t", Index: "ix_cat", EqVals: []value.Value{value.Str("a"), value.Str("b")}},
		&plan.IndexUnion{Table: "missing"},
		&plan.IndexUnion{Table: "t", Seeks: []*plan.IndexSeek{{Table: "t", Index: "missing"}}},
		&plan.Predict{Child: &plan.SeqScan{Table: "t"}, Model: "missing", As: "x"},
		&plan.Filter{Child: &plan.SeqScan{Table: "missing"}, Pred: expr.TrueExpr{}},
		&plan.Project{Child: &plan.SeqScan{Table: "missing"}},
		&plan.Limit{Child: &plan.SeqScan{Table: "missing"}, N: 1},
		&plan.Predict{Child: &plan.SeqScan{Table: "missing"}, Model: "m", As: "x"},
	}
	for _, n := range cases {
		if _, err := Build(c, n); err == nil {
			t.Errorf("Build(%s) should fail", n.Describe())
		}
	}
}

func TestPredictUnboundModel(t *testing.T) {
	c, _ := testDB(t, 10)
	c.RegisterModel(wrongColsModel{}, nil)
	_, err := Build(c, &plan.Predict{Child: &plan.SeqScan{Table: "t"}, Model: "wrong", As: "x"})
	if err == nil {
		t.Error("model with unbound input columns should fail to build")
	}
}

type wrongColsModel struct{}

func (wrongColsModel) Name() string                    { return "wrong" }
func (wrongColsModel) PredictColumn() string           { return "c" }
func (wrongColsModel) InputColumns() []string          { return []string{"no_such_col"} }
func (wrongColsModel) Classes() []value.Value          { return nil }
func (wrongColsModel) Predict(value.Tuple) value.Value { return value.Null() }
