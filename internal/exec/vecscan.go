// Fused vectorized scan-filter over the column-group sidecar. The
// operator pulls whole column groups, evaluates the (adaptively
// ordered) predicate over selection vectors in internal/exec/vec, and
// reconstructs only the surviving rows as tuples — the Predict and
// residual-filter operators above it therefore run on envelope
// survivors only.
//
// Execution proceeds in two phases. The first warmupGroups groups are
// processed serially by the consumer with term ordering in measurement
// mode (every term evaluated, pass rates recorded). The predicate is
// then frozen — orders picked, short-circuiting enabled — and the
// remaining groups either continue serially (DOP 1) or fan out to a
// morsel-style worker pool with one group per claim. Because the warmup
// is serial and the frozen per-group evaluation is independent of
// scheduling, output AND per-term counters are deterministic at any
// DOP, and the output row order matches the row-path scan exactly
// (groups are built in heap order and reassembled in group order).
package exec

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"minequery/internal/catalog"
	"minequery/internal/exec/vec"
	"minequery/internal/expr"
	"minequery/internal/fault"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// warmupGroups is the number of column groups evaluated in measurement
// mode before the term order freezes.
const warmupGroups = 2

// vecCore is the scheduling-independent part of a columnar scan: shared
// by the serial consumer and the worker pool, which deliberately get no
// reference to the consumer state.
type vecCore struct {
	table *catalog.Table
	pred  *vec.Pred // nil for an unfiltered scan
	opts  Options
	io    *storage.Counters
	// scanSt is the scan leaf's stats slot when the operator also plays
	// the Filter role (the instrumented wrapper then only sees
	// post-filter output); nil for a bare scan, whose wrapper already
	// counts everything.
	scanSt *OpStats
	// filtSt/base drive envelope-vs-residual attribution of rejected
	// rows, mirroring batchFilter.
	filtSt *OpStats
	base   expr.Expr

	processed atomic.Int64
}

// selectGroup runs the scan-and-filter half of one column group: I/O
// and scan-stats accounting, predicate evaluation into a selection
// vector, and envelope-vs-residual attribution of the rejected rows.
// It returns the selection (nil when the scan is unfiltered) and the
// surviving row count. Safe for concurrent use with per-caller scratch.
func (c *vecCore) selectGroup(g *storage.ColGroup, sc *vec.Scratch) ([]int32, int) {
	if c.io != nil {
		// One sidecar group read counts as one sequential page; every row
		// of the group is touched column-wise.
		c.io.SeqPageReads.Add(1)
		c.io.TupleReads.Add(int64(g.N))
	}
	if c.scanSt != nil {
		c.scanSt.Rows.Add(int64(g.N))
		c.scanSt.Batches.Add(1)
	}
	var sel []int32
	n := g.N
	if c.pred != nil {
		sel = c.pred.FilterGroup(g, sc)
		n = len(sel)
	}
	c.processed.Add(1)
	if c.pred != nil && c.base != nil && c.filtSt != nil {
		// Re-check each rejected row against the un-augmented baseline to
		// attribute the rejection to the envelope or the residual.
		j := 0
		for i := 0; i < g.N; i++ {
			if j < len(sel) && int(sel[j]) == i {
				j++
				continue
			}
			if c.base.Eval(c.table.Schema, g.TupleAt(i)) {
				c.filtSt.EnvRejected.Add(1)
			} else {
				c.filtSt.ResidRejected.Add(1)
			}
		}
	}
	return sel, n
}

// processGroup filters one column group and materializes the surviving
// rows into output batches. Safe for concurrent use with per-caller
// scratch.
func (c *vecCore) processGroup(g *storage.ColGroup, sc *vec.Scratch) []Batch {
	sel, n := c.selectGroup(g, sc)
	if n == 0 {
		return nil
	}
	width := len(g.Cols)
	backing := make(value.Tuple, n*width)
	var batches []Batch
	size := c.opts.BatchSize
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		batch := make(Batch, 0, end-start)
		for k := start; k < end; k++ {
			ri := k
			if sel != nil {
				ri = int(sel[k])
			}
			row := backing[k*width : (k+1)*width : (k+1)*width]
			for ci := 0; ci < width; ci++ {
				row[ci] = g.Cols[ci].Value(ri)
			}
			batch = append(batch, row)
		}
		batches = append(batches, batch)
	}
	return batches
}

// vecScan is the consumer end. NextBatch runs on a single goroutine;
// after the warmup it may fan out a worker pool feeding per-group
// result channels, reassembled in group order like parallelScan.
type vecScan struct {
	*vecCore
	ctx      context.Context
	scanNode plan.Node
	col      *Collector
	groups   []*storage.ColGroup

	sc       *vec.Scratch
	gi       int
	warmLeft int
	frozen   bool

	// Worker-pool state; nil while (and if never) running parallel.
	results []chan morselResult
	claim   *atomic.Int64
	cancelF *atomic.Bool
	nextRes int

	pending  []Batch
	err      error
	reported bool
}

// newVecScan builds the fused operator for a columnar-flagged scan (and
// optional filter directly above it). It returns nil — routing the
// caller to the row path — when the table's sidecar is stale or missing,
// or when the predicate has a shape the vectorized evaluator refuses.
func newVecScan(ctx context.Context, t *catalog.Table, x *plan.SeqScan, filterNode plan.Node, pred expr.Expr, opts Options) *vecScan {
	cs := t.ColumnStore()
	if cs == nil {
		return nil
	}
	var vp *vec.Pred
	if pred != nil {
		p, ok := vec.Compile(pred, t.Schema, t.Stats())
		if !ok {
			return nil
		}
		vp = p
	}
	groups := cs.Groups
	if x.Partitions != nil {
		keep := make(map[int]bool, len(x.Partitions))
		for _, p := range x.Partitions {
			keep[p] = true
		}
		groups = nil
		for _, g := range cs.Groups {
			if keep[g.Part] {
				groups = append(groups, g)
			}
		}
	}
	core := &vecCore{table: t, pred: vp, opts: opts, io: ioOf(opts.Collector)}
	if col := opts.Collector; col != nil && filterNode != nil {
		core.scanSt = col.Op(x)
		if base := col.envBaseline(filterNode); base != nil {
			core.filtSt, core.base = col.Op(filterNode), base
		}
	}
	warm := 0
	if vp != nil {
		warm = warmupGroups
	}
	return &vecScan{
		vecCore:  core,
		ctx:      ctx,
		scanNode: x,
		col:      opts.Collector,
		groups:   groups,
		sc:       vec.NewScratch(),
		warmLeft: warm,
	}
}

func (s *vecScan) Schema() *value.Schema { return s.table.Schema }

func (s *vecScan) NextBatch() (Batch, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if ferr := s.opts.Faults.Hit(fault.SiteBatch); ferr != nil {
		s.err = fmt.Errorf("exec: columnar scan %s: %w", s.table.Name, ferr)
		return nil, false, s.err
	}
	for {
		if err := ctxErr(s.ctx); err != nil {
			s.fail(err)
			return nil, false, s.err
		}
		if len(s.pending) > 0 {
			b := s.pending[0]
			s.pending = s.pending[1:]
			return b, false, nil
		}
		if s.results != nil {
			if s.nextRes >= len(s.results) {
				s.reportInfo()
				return nil, true, nil
			}
			r := <-s.results[s.nextRes]
			s.nextRes++
			if r.err != nil {
				s.fail(r.err)
				return nil, false, s.err
			}
			s.pending = r.batches
			continue
		}
		if !s.frozen && (s.warmLeft == 0 || s.gi >= len(s.groups)) {
			if s.pred != nil {
				s.pred.Freeze()
			}
			s.frozen = true
			if rem := len(s.groups) - s.gi; s.opts.DOP > 1 && rem > 1 {
				s.startWorkers()
				continue
			}
		}
		if s.gi >= len(s.groups) {
			s.reportInfo()
			return nil, true, nil
		}
		g := s.groups[s.gi]
		s.gi++
		if s.warmLeft > 0 {
			s.warmLeft--
		}
		s.pending = s.processGroup(g, s.sc)
	}
}

// startWorkers fans the remaining groups out to a claim-based pool, one
// group per claim, results reassembled in group order.
func (s *vecScan) startWorkers() {
	rem := s.groups[s.gi:]
	s.gi = len(s.groups)
	s.results = make([]chan morselResult, len(rem))
	for i := range s.results {
		s.results[i] = make(chan morselResult, 1)
	}
	s.claim = new(atomic.Int64)
	s.cancelF = new(atomic.Bool)
	workers := s.opts.DOP
	if workers > len(rem) {
		workers = len(rem)
	}
	for w := 0; w < workers; w++ {
		var ws *WorkerStats
		if s.col != nil {
			ws = s.col.newWorker()
		}
		go vecScanWorker(s.ctx, s.vecCore, rem, s.results, s.claim, s.cancelF, ws)
	}
}

// vecScanWorker claims groups until the cursor runs off the end. Like
// scanWorker it holds no consumer reference, observes SiteMorselClaim
// per claim, and stops within one group of cancellation.
func vecScanWorker(ctx context.Context, core *vecCore, groups []*storage.ColGroup, results []chan morselResult, claim *atomic.Int64, cancel *atomic.Bool, ws *WorkerStats) {
	sc := vec.NewScratch()
	done := ctx.Done()
	stopped := func() bool {
		if cancel.Load() {
			return true
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	for {
		m := int(claim.Add(1) - 1)
		if m >= len(results) {
			return
		}
		if stopped() {
			results[m] <- morselResult{err: ctx.Err()}
			continue
		}
		if ferr := core.opts.Faults.Hit(fault.SiteMorselClaim); ferr != nil {
			results[m] <- morselResult{err: fmt.Errorf("exec: columnar scan %s group %d: %w", core.table.Name, m, ferr)}
			continue
		}
		var start time.Time
		if ws != nil {
			start = time.Now()
		}
		batches := core.processGroup(groups[m], sc)
		if ws != nil {
			ws.Morsels.Add(1)
			ws.Rows.Add(int64(groups[m].N))
			ws.WallNanos.Add(time.Since(start).Nanoseconds())
		}
		results[m] <- morselResult{batches: batches}
	}
}

func (s *vecScan) fail(err error) {
	if cause := s.ctx.Err(); cause != nil && err == cause {
		err = fmt.Errorf("exec: query interrupted: %w", err)
	}
	s.err = err
	if s.cancelF != nil {
		s.cancelF.Store(true)
	}
}

// reportInfo publishes the columnar-scan actuals (groups processed,
// frozen term order, per-term counters) to the collector, once.
func (s *vecScan) reportInfo() {
	if s.reported {
		return
	}
	s.reported = true
	if s.col == nil {
		return
	}
	s.col.setVecInfo(s.scanNode, s.info())
}

// info snapshots the columnar actuals (shared with the fused aggregate
// scan, which reports the same way for its scan leaf).
func (c *vecCore) info() *VecScanInfo {
	info := &VecScanInfo{Groups: c.processed.Load()}
	if c.pred != nil {
		r := c.pred.Report()
		info.Combiner = r.Combiner
		info.Order = append([]int(nil), r.Order...)
		for _, t := range r.Terms {
			info.Terms = append(info.Terms, VecTermActual{
				Index: t.Index, Term: t.Term, Evaluated: t.Evaluated, Passed: t.Passed,
			})
		}
	}
	return info
}

// Close stops the workers (none ever block: per-group channels are
// buffered for their single send) and publishes the scan info so a
// truncated query (LIMIT) still reports its columnar actuals.
func (s *vecScan) Close() {
	if s.cancelF != nil {
		s.cancelF.Store(true)
	}
	s.pending = nil
	s.gi = len(s.groups)
	if s.results != nil {
		s.nextRes = len(s.results)
	}
	s.reportInfo()
}
