// Batch-at-a-time execution: the NextBatch path of the iterator
// contract. Operators that can profitably amortize per-tuple dispatch
// (scans, filters, prediction joins, projections) implement
// BatchIterator natively; everything else is adapted through AsBatch, so
// tuple-at-a-time operators keep working unchanged.
package exec

import (
	"context"
	"fmt"
	"runtime"

	"minequery/internal/catalog"
	"minequery/internal/expr"
	"minequery/internal/fault"
	"minequery/internal/mining"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// Batch is an ordered group of tuples handed from a BatchIterator to its
// consumer. Ownership transfers with the batch: the consumer may mutate
// or retain it, and the producer must not reuse the backing array.
type Batch = []value.Tuple

// BatchIterator produces tuples a batch at a time. Batches are never
// empty; done=true (with a nil batch) signals exhaustion. After done or
// an error the iterator must not be used again, except Close.
type BatchIterator interface {
	// Schema describes the tuples the iterator produces.
	Schema() *value.Schema
	// NextBatch returns the next batch of tuples.
	NextBatch() (Batch, bool, error)
	// Close releases resources. It is safe to call more than once.
	Close()
}

// DefaultBatchSize is the target tuples per batch.
const DefaultBatchSize = 256

// DefaultMorselPages is the heap pages per parallel-scan morsel.
const DefaultMorselPages = 16

// Options tunes batch execution.
type Options struct {
	// DOP is the degree of parallelism for sequential scans: the number
	// of workers consuming page-range morsels. <=0 means 1 (serial).
	DOP int
	// BatchSize is the target tuples per batch (<=0: DefaultBatchSize).
	BatchSize int
	// MorselPages is the heap pages per scan morsel (<=0:
	// DefaultMorselPages).
	MorselPages int
	// Collector, when non-nil, gathers per-operator runtime statistics
	// and attributes storage I/O to the query (see Collector). Nil runs
	// the bare operators.
	Collector *Collector
	// Faults, when non-nil, is consulted at the executor's injection
	// sites (index seeks, morsel claims, batch boundaries); it does NOT
	// govern the storage layer, whose sites live on the heap itself (see
	// storage.Heap.SetFaults). Nil — the production state — reduces each
	// site to a nil-pointer check.
	Faults *fault.Injector
	// Retry bounds retries of transient failures (injected or real) in
	// page reads, RID lookups, and index seeks. The zero value disables
	// retrying.
	Retry fault.RetryPolicy
	// Clock drives retry backoff sleeps. Nil means the wall clock; tests
	// install a fault.FakeClock to assert backoff schedules exactly.
	Clock fault.Clock
}

// onRetry returns the retry observer feeding the collector's retry
// counter, or nil without a collector.
func (o Options) onRetry() func(error) {
	if o.Collector == nil {
		return nil
	}
	return func(error) { o.Collector.Retries.Add(1) }
}

func (o Options) fill() Options {
	if o.DOP <= 0 {
		o.DOP = 1
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.MorselPages <= 0 {
		o.MorselPages = DefaultMorselPages
	}
	return o
}

// DefaultOptions returns the standard batch-execution configuration:
// one scan worker per available CPU.
func DefaultOptions() Options {
	return Options{
		DOP:         runtime.GOMAXPROCS(0),
		BatchSize:   DefaultBatchSize,
		MorselPages: DefaultMorselPages,
	}
}

// BuildBatch compiles a physical plan into a batch-iterator tree.
// Scans, filters, prediction joins, projections, and limits execute
// batch-natively; index access paths (already bounded by the RID list)
// run tuple-at-a-time and are adapted.
func BuildBatch(c *catalog.Catalog, n plan.Node, opts Options) (BatchIterator, error) {
	return BuildBatchCtx(context.Background(), c, n, opts)
}

// BuildBatchCtx is BuildBatch with a cancellation context threaded into
// the scan leaves: a cancelled or timed-out ctx makes NextBatch return
// ctx's error (wrapped, so errors.Is matches context.Canceled /
// context.DeadlineExceeded), and morsel-scan workers stop claiming and
// decoding work promptly instead of finishing the table.
func BuildBatchCtx(ctx context.Context, c *catalog.Catalog, n plan.Node, opts Options) (BatchIterator, error) {
	opts = opts.fill()
	if ctx == nil {
		ctx = context.Background()
	}
	return buildBatchNode(ctx, c, n, opts)
}

// buildBatchNode builds one plan node (recursing for children) and, when
// a Collector is attached, wraps it with the per-node accounting shim.
func buildBatchNode(ctx context.Context, c *catalog.Catalog, n plan.Node, opts Options) (BatchIterator, error) {
	it, err := buildBareBatchNode(ctx, c, n, opts)
	if err != nil {
		return nil, err
	}
	if col := opts.Collector; col != nil {
		it = &instrumented{child: it, st: col.Op(n)}
	}
	return it, nil
}

func buildBareBatchNode(ctx context.Context, c *catalog.Catalog, n plan.Node, opts Options) (BatchIterator, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		if x.Columnar {
			if vs := newVecScan(ctx, t, x, nil, nil, opts); vs != nil {
				return vs, nil
			}
			// Sidecar stale or missing: the flag is only a hint, run the
			// row path with identical results.
		}
		if opts.DOP > 1 {
			return newParallelScan(ctx, t, x, opts), nil
		}
		return newBatchSeqScan(ctx, t, x, opts), nil
	case *plan.Filter:
		if scan, isScan := x.Child.(*plan.SeqScan); isScan && scan.Columnar {
			if t, ok := c.Table(scan.Table); ok {
				// Fuse filter and scan into one vectorized operator so the
				// predicate runs over selection vectors, not tuples. Falls
				// through to the row operators when the sidecar is stale or
				// the predicate shape is unsupported.
				if vs := newVecScan(ctx, t, scan, n, x.Pred, opts); vs != nil {
					return vs, nil
				}
			}
		}
		child, err := buildBatchNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		f := &batchFilter{child: child, pred: x.Pred}
		if col := opts.Collector; col != nil {
			if base := col.envBaseline(n); base != nil {
				f.st, f.base = col.Op(n), base
			}
		}
		return f, nil
	case *plan.Project:
		child, err := buildBatchNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		return newBatchProject(child, x.Cols)
	case *plan.Predict:
		child, err := buildBatchNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		me, ok := c.Model(x.Model)
		if !ok {
			return nil, fmt.Errorf("exec: no model %q", x.Model)
		}
		if x.Version != 0 && me.Version != x.Version {
			return nil, fmt.Errorf("exec: plan invalidated: model %q is v%d, plan was optimized at v%d",
				x.Model, me.Version, x.Version)
		}
		return newBatchPredict(child, me, x.As)
	case *plan.Limit:
		child, err := buildBatchNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		return &batchLimit{child: child, n: x.N}, nil
	case *plan.HashAgg:
		if x.Phase != plan.AggFinal {
			return nil, fmt.Errorf("exec: HashAgg(partial) cannot be built standalone; it is owned by its Final")
		}
		return newBatchFinalAgg(ctx, c, x, opts)
	default:
		if err := ctxErr(ctx); err != nil {
			// Index access paths materialize their RID lists inside
			// Build; don't start that work for a dead query.
			return nil, err
		}
		it, err := buildNode(ctx, c, n, opts)
		if err != nil {
			return nil, err
		}
		return &ctxBatch{ctx: ctx, child: AsBatch(it, opts.BatchSize)}, nil
	}
}

// ctxErr wraps a context error so callers can both errors.Is-match the
// cause and see that execution (not planning) was interrupted.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("exec: query interrupted: %w", err)
	}
	return nil
}

// ctxBatch checks the context once per batch on behalf of adapted
// tuple-at-a-time subtrees (index paths), bounding how long a cancelled
// query keeps running to one batch.
type ctxBatch struct {
	ctx   context.Context
	child BatchIterator
}

func (c *ctxBatch) Schema() *value.Schema { return c.child.Schema() }

func (c *ctxBatch) NextBatch() (Batch, bool, error) {
	if err := ctxErr(c.ctx); err != nil {
		return nil, false, err
	}
	return c.child.NextBatch()
}

func (c *ctxBatch) Close() { c.child.Close() }

// RunOpts builds and drains a plan batch-at-a-time with the given
// options, returning all produced tuples in plan order (parallel scans
// reassemble morsels in heap order, so results are deterministic at any
// DOP).
func RunOpts(c *catalog.Catalog, n plan.Node, opts Options) ([]value.Tuple, *value.Schema, error) {
	return RunCtx(context.Background(), c, n, opts)
}

// RunCtx is RunOpts under a cancellation context: execution stops (and
// the ctx error is returned) as soon as cancellation is observed, which
// is at worst one batch after it fires.
func RunCtx(ctx context.Context, c *catalog.Catalog, n plan.Node, opts Options) ([]value.Tuple, *value.Schema, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	it, err := BuildBatchCtx(ctx, c, n, opts)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	var out []value.Tuple
	for {
		b, done, err := it.NextBatch()
		if err != nil {
			return nil, nil, err
		}
		if done {
			return out, it.Schema(), nil
		}
		out = append(out, b...)
	}
}

// AsBatch adapts an iterator to the batch contract. Iterators that are
// already batch-native are returned unchanged.
func AsBatch(it Iterator, batchSize int) BatchIterator {
	if b, ok := it.(BatchIterator); ok {
		return b
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &batcher{child: it, size: batchSize}
}

// batcher groups a tuple-at-a-time iterator's output into batches.
type batcher struct {
	child Iterator
	size  int
}

func (b *batcher) Schema() *value.Schema { return b.child.Schema() }

func (b *batcher) NextBatch() (Batch, bool, error) {
	var batch Batch
	for len(batch) < b.size {
		t, done, err := b.child.Next()
		if err != nil {
			return nil, false, err
		}
		if done {
			break
		}
		if batch == nil {
			batch = make(Batch, 0, b.size)
		}
		batch = append(batch, t)
	}
	if len(batch) == 0 {
		return nil, true, nil
	}
	return batch, false, nil
}

func (b *batcher) Close() { b.child.Close() }

// Unbatch adapts a batch iterator back to the tuple contract, so
// tuple-at-a-time consumers can sit on top of batch-native producers.
func Unbatch(b BatchIterator) Iterator {
	if it, ok := b.(Iterator); ok {
		return it
	}
	return &unbatcher{child: b}
}

// unbatcher yields a batch iterator's tuples one at a time.
type unbatcher struct {
	child BatchIterator
	buf   Batch
	pos   int
	done  bool
}

func (u *unbatcher) Schema() *value.Schema { return u.child.Schema() }

func (u *unbatcher) Next() (value.Tuple, bool, error) {
	for u.pos >= len(u.buf) {
		if u.done {
			return nil, true, nil
		}
		b, done, err := u.child.NextBatch()
		if err != nil {
			return nil, false, err
		}
		if done {
			u.done = true
			return nil, true, nil
		}
		u.buf, u.pos = b, 0
	}
	t := u.buf[u.pos]
	u.pos++
	return t, false, nil
}

func (u *unbatcher) Close() { u.child.Close() }

// batchSeqScan streams a table heap page by page, decoding rows into
// batches on demand (no up-front materialization). The pages come from
// a list of page ranges — the whole heap for ordinary tables, the
// surviving partitions' global ranges for pruned partitioned scans.
type batchSeqScan struct {
	ctx       context.Context
	table     *catalog.Table
	io        *storage.Counters
	opts      Options
	onRetry   func(error)
	batchSize int
	ranges    [][2]int
	ri        int // current range
	nextPage  int // next page within ranges[ri]
	err       error
}

func newBatchSeqScan(ctx context.Context, t *catalog.Table, x *plan.SeqScan, opts Options) *batchSeqScan {
	s := &batchSeqScan{ctx: ctx, table: t, io: ioOf(opts.Collector), opts: opts,
		onRetry: opts.onRetry(), batchSize: opts.BatchSize, ranges: t.PartitionPageRanges(x.Partitions)}
	if len(s.ranges) > 0 {
		s.nextPage = s.ranges[0][0]
	}
	return s
}

func (s *batchSeqScan) Schema() *value.Schema { return s.table.Schema }

func (s *batchSeqScan) NextBatch() (Batch, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if ferr := s.opts.Faults.Hit(fault.SiteBatch); ferr != nil {
		s.err = fmt.Errorf("exec: scan %s: %w", s.table.Name, ferr)
		return nil, false, s.err
	}
	var batch Batch
	for len(batch) < s.batchSize && s.ri < len(s.ranges) {
		if s.nextPage >= s.ranges[s.ri][1] {
			s.ri++
			if s.ri < len(s.ranges) {
				s.nextPage = s.ranges[s.ri][0]
			}
			continue
		}
		if s.err = ctxErr(s.ctx); s.err != nil {
			return nil, false, s.err
		}
		// One page per attempt: a page-read failure fires before any of
		// the page's records are decoded, so retrying it cannot
		// double-deliver rows into the batch.
		page := s.nextPage
		rerr := fault.Retry(s.ctx, s.opts.Clock, s.opts.Retry, func() error {
			return s.table.Heap.ScanPagesInto(s.io, page, page+1, func(_ storage.RID, rec []byte) bool {
				tup, err := value.DecodeTuple(rec)
				if err != nil {
					s.err = fmt.Errorf("exec: scan %s: %w", s.table.Name, err)
					return false
				}
				if batch == nil {
					batch = make(Batch, 0, s.batchSize)
				}
				batch = append(batch, tup)
				return true
			})
		}, s.onRetry)
		s.nextPage++
		if s.err != nil {
			return nil, false, s.err
		}
		if rerr != nil {
			s.err = fmt.Errorf("exec: scan %s: %w", s.table.Name, rerr)
			return nil, false, s.err
		}
	}
	if len(batch) == 0 {
		return nil, true, nil
	}
	return batch, false, nil
}

func (s *batchSeqScan) Close() { s.ri = len(s.ranges) }

// batchFilter drops tuples failing the predicate, in place: the batch's
// backing array is reused for the survivors (ownership transferred).
// When envelope attribution is on (EXPLAIN ANALYZE), each rejected row
// is re-checked against the un-augmented baseline predicate to decide
// whether the added envelope or the query's own predicate pruned it.
type batchFilter struct {
	child BatchIterator
	pred  expr.Expr
	st    *OpStats
	base  expr.Expr
}

func (f *batchFilter) Schema() *value.Schema { return f.child.Schema() }

func (f *batchFilter) NextBatch() (Batch, bool, error) {
	s := f.child.Schema()
	for {
		b, done, err := f.child.NextBatch()
		if done || err != nil {
			return nil, done, err
		}
		kept := b[:0]
		for _, t := range b {
			if f.pred.Eval(s, t) {
				kept = append(kept, t)
			} else if f.base != nil {
				if f.base.Eval(s, t) {
					f.st.EnvRejected.Add(1)
				} else {
					f.st.ResidRejected.Add(1)
				}
			}
		}
		if len(kept) > 0 {
			return kept, false, nil
		}
	}
}

func (f *batchFilter) Close() { f.child.Close() }

// batchProject narrows columns for a whole batch at a time.
type batchProject struct {
	child  BatchIterator
	ords   []int
	schema *value.Schema
}

func newBatchProject(child BatchIterator, cols []string) (BatchIterator, error) {
	if len(cols) == 0 {
		return child, nil
	}
	ords, schema, err := projectOrds(child.Schema(), cols)
	if err != nil {
		return nil, err
	}
	return &batchProject{child: child, ords: ords, schema: schema}, nil
}

func (p *batchProject) Schema() *value.Schema { return p.schema }

func (p *batchProject) NextBatch() (Batch, bool, error) {
	b, done, err := p.child.NextBatch()
	if done || err != nil {
		return nil, done, err
	}
	// One backing allocation for the whole batch's narrowed tuples.
	backing := make(value.Tuple, len(b)*len(p.ords))
	for i, t := range b {
		out := backing[i*len(p.ords) : (i+1)*len(p.ords) : (i+1)*len(p.ords)]
		for j, o := range p.ords {
			out[j] = t[o]
		}
		b[i] = out
	}
	return b, false, nil
}

func (p *batchProject) Close() { p.child.Close() }

// batchPredict appends the model's predicted class to every tuple of a
// batch (the batch-at-a-time PredictionJoin).
type batchPredict struct {
	child   BatchIterator
	binding mining.Binding
	schema  *value.Schema
	buf     value.Tuple
}

func newBatchPredict(child BatchIterator, me *catalog.ModelEntry, as string) (BatchIterator, error) {
	b, schema, err := predictBinding(child.Schema(), me, as)
	if err != nil {
		return nil, err
	}
	return &batchPredict{
		child:   child,
		binding: b,
		schema:  schema,
		buf:     make(value.Tuple, len(b.Ordinals)),
	}, nil
}

func (p *batchPredict) Schema() *value.Schema { return p.schema }

func (p *batchPredict) NextBatch() (Batch, bool, error) {
	b, done, err := p.child.NextBatch()
	if done || err != nil {
		return nil, done, err
	}
	width := p.schema.Len()
	backing := make(value.Tuple, len(b)*width)
	for i, t := range b {
		out := backing[i*width : (i+1)*width : (i+1)*width]
		copy(out, t)
		out[width-1] = p.binding.PredictInto(t, p.buf)
		b[i] = out
	}
	return b, false, nil
}

func (p *batchPredict) Close() { p.child.Close() }

// batchLimit truncates the stream after n rows.
type batchLimit struct {
	child BatchIterator
	n     int64
	seen  int64
}

func (l *batchLimit) Schema() *value.Schema { return l.child.Schema() }

func (l *batchLimit) NextBatch() (Batch, bool, error) {
	if l.seen >= l.n {
		return nil, true, nil
	}
	b, done, err := l.child.NextBatch()
	if done || err != nil {
		return nil, done, err
	}
	if remaining := l.n - l.seen; int64(len(b)) > remaining {
		b = b[:remaining]
	}
	l.seen += int64(len(b))
	return b, false, nil
}

func (l *batchLimit) Close() { l.child.Close() }
