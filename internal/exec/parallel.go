// Morsel-driven parallel sequential scan: the heap is split into
// fixed-size page-range morsels claimed by a pool of workers off a
// shared atomic cursor (the scheduling scheme of Leis et al.'s
// "Morsel-Driven Parallelism"). Workers decode rows into batches; the
// consumer reassembles morsels in heap order, so the scan's output is
// deterministic and identical to the serial scan at any DOP.
package exec

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"minequery/internal/catalog"
	"minequery/internal/fault"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// morselResult is one decoded morsel: the batches of its page range, in
// heap order.
type morselResult struct {
	batches []Batch
	err     error
}

// parallelScan is the consumer end of the worker pool. NextBatch must be
// called from a single goroutine (the usual iterator contract); the
// workers it feeds from run concurrently.
type parallelScan struct {
	ctx   context.Context
	table *catalog.Table

	// results has one single-use buffered channel per morsel; worker i
	// writes exactly one morselResult to results[m] for each morsel m it
	// claims, so no send ever blocks and Close never needs to drain.
	results []chan morselResult
	claim   *atomic.Int64
	cancel  *atomic.Bool

	nextMorsel int
	pending    []Batch
	err        error
}

// morselRanges chunks each page range into morsels of at most
// morselPages pages. Morsels never straddle a range boundary, so on
// partitioned tables each morsel reads from exactly one partition and
// heap-order reassembly yields partition-major row order — the same
// order the serial scan produces.
func morselRanges(ranges [][2]int, morselPages int) [][2]int {
	var out [][2]int
	for _, r := range ranges {
		for lo := r[0]; lo < r[1]; lo += morselPages {
			hi := lo + morselPages
			if hi > r[1] {
				hi = r[1]
			}
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

func newParallelScan(ctx context.Context, t *catalog.Table, x *plan.SeqScan, opts Options) *parallelScan {
	morsels := morselRanges(t.PartitionPageRanges(x.Partitions), opts.MorselPages)
	ps := &parallelScan{
		ctx:     ctx,
		table:   t,
		results: make([]chan morselResult, len(morsels)),
		claim:   new(atomic.Int64),
		cancel:  new(atomic.Bool),
	}
	for i := range ps.results {
		ps.results[i] = make(chan morselResult, 1)
	}
	workers := opts.DOP
	if workers > len(morsels) {
		workers = len(morsels)
	}
	for w := 0; w < workers; w++ {
		var ws *WorkerStats
		if opts.Collector != nil {
			ws = opts.Collector.newWorker()
		}
		go scanWorker(ctx, t, ps.results, ps.claim, ps.cancel, opts, morsels, ws)
	}
	return ps
}

// scanWorker claims morsels until the cursor runs off the end, decoding
// each into batches. It deliberately holds no reference to the
// parallelScan so an abandoned scan can be collected while stragglers
// finish. Cancellation — the consumer's cancel flag or the query
// context — is observed at each morsel claim and at each batch flush
// inside a morsel, so a dead query stops decoding within one batch.
//
// Two fault sites live here: SiteMorselClaim fires right after a morsel
// is claimed (a delay-only rule stalls this worker while the others
// drain the remaining morsels; an error rule fails the morsel), and the
// storage layer's sequential-read site fires per page, absorbed by the
// per-page retry below when a policy is configured.
func scanWorker(ctx context.Context, t *catalog.Table, results []chan morselResult, claim *atomic.Int64, cancel *atomic.Bool, opts Options, morsels [][2]int, ws *WorkerStats) {
	io := ioOf(opts.Collector)
	onRetry := opts.onRetry()
	done := ctx.Done()
	stopped := func() bool {
		if cancel.Load() {
			return true
		}
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	for {
		m := int(claim.Add(1) - 1)
		if m >= len(results) {
			return
		}
		if stopped() {
			results[m] <- morselResult{err: ctx.Err()}
			continue
		}
		if ferr := opts.Faults.Hit(fault.SiteMorselClaim); ferr != nil {
			results[m] <- morselResult{err: fmt.Errorf("exec: scan %s morsel %d: %w", t.Name, m, ferr)}
			continue
		}
		lo, hi := morsels[m][0], morsels[m][1]
		var start time.Time
		if ws != nil {
			start = time.Now()
		}
		res := morselResult{}
		rows := int64(0)
		batch := make(Batch, 0, opts.BatchSize)
		decode := func(_ storage.RID, rec []byte) bool {
			tup, err := value.DecodeTuple(rec)
			if err != nil {
				res.err = fmt.Errorf("exec: scan %s: %w", t.Name, err)
				return false
			}
			batch = append(batch, tup)
			rows++
			if len(batch) >= opts.BatchSize {
				res.batches = append(res.batches, batch)
				batch = make(Batch, 0, opts.BatchSize)
				if stopped() {
					res.err = ctx.Err()
					return false
				}
			}
			return true
		}
		// Page at a time so a transient page-read failure retries just
		// that page; the fault fires before any of the page's records
		// reach decode, so the retry cannot duplicate rows.
		for pi := lo; pi < hi && res.err == nil; pi++ {
			page := pi
			if err := fault.Retry(ctx, opts.Clock, opts.Retry, func() error {
				return t.Heap.ScanPagesInto(io, page, page+1, decode)
			}, onRetry); err != nil && res.err == nil {
				res.err = fmt.Errorf("exec: scan %s: %w", t.Name, err)
			}
		}
		if len(batch) > 0 && res.err == nil {
			res.batches = append(res.batches, batch)
		}
		if ws != nil {
			ws.Morsels.Add(1)
			ws.Rows.Add(rows)
			ws.WallNanos.Add(time.Since(start).Nanoseconds())
		}
		results[m] <- res
	}
}

func (ps *parallelScan) Schema() *value.Schema { return ps.table.Schema }

func (ps *parallelScan) NextBatch() (Batch, bool, error) {
	if ps.err != nil {
		return nil, false, ps.err
	}
	for {
		if err := ctxErr(ps.ctx); err != nil {
			ps.fail(err)
			return nil, false, ps.err
		}
		if len(ps.pending) > 0 {
			b := ps.pending[0]
			ps.pending = ps.pending[1:]
			return b, false, nil
		}
		if ps.nextMorsel >= len(ps.results) {
			return nil, true, nil
		}
		r := <-ps.results[ps.nextMorsel]
		ps.nextMorsel++
		if r.err != nil {
			// A worker aborted this morsel: a decode error, or it saw the
			// context die mid-morsel (err is then the raw ctx error).
			ps.fail(r.err)
			return nil, false, ps.err
		}
		ps.pending = r.batches
	}
}

// fail records the scan error and stops the workers.
func (ps *parallelScan) fail(err error) {
	if ctxCause := ps.ctx.Err(); ctxCause != nil && err == ctxCause {
		err = fmt.Errorf("exec: query interrupted: %w", err)
	}
	ps.err = err
	ps.cancel.Store(true)
}

// Close tells the workers to stop claiming real work. Workers never
// block (each morsel channel is buffered for its single send), so there
// is nothing to drain or join.
func (ps *parallelScan) Close() {
	ps.cancel.Store(true)
	ps.pending = nil
	ps.nextMorsel = len(ps.results)
}
