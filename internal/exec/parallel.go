// Morsel-driven parallel sequential scan: the heap is split into
// fixed-size page-range morsels claimed by a pool of workers off a
// shared atomic cursor (the scheduling scheme of Leis et al.'s
// "Morsel-Driven Parallelism"). Workers decode rows into batches; the
// consumer reassembles morsels in heap order, so the scan's output is
// deterministic and identical to the serial scan at any DOP.
package exec

import (
	"fmt"
	"sync/atomic"

	"minequery/internal/catalog"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// morselResult is one decoded morsel: the batches of its page range, in
// heap order.
type morselResult struct {
	batches []Batch
	err     error
}

// parallelScan is the consumer end of the worker pool. NextBatch must be
// called from a single goroutine (the usual iterator contract); the
// workers it feeds from run concurrently.
type parallelScan struct {
	table *catalog.Table

	// results has one single-use buffered channel per morsel; worker i
	// writes exactly one morselResult to results[m] for each morsel m it
	// claims, so no send ever blocks and Close never needs to drain.
	results []chan morselResult
	claim   *atomic.Int64
	cancel  *atomic.Bool

	nextMorsel int
	pending    []Batch
	err        error
}

func newParallelScan(t *catalog.Table, opts Options) *parallelScan {
	pageCount := t.Heap.PageCount()
	nMorsels := (pageCount + opts.MorselPages - 1) / opts.MorselPages
	ps := &parallelScan{
		table:   t,
		results: make([]chan morselResult, nMorsels),
		claim:   new(atomic.Int64),
		cancel:  new(atomic.Bool),
	}
	for i := range ps.results {
		ps.results[i] = make(chan morselResult, 1)
	}
	workers := opts.DOP
	if workers > nMorsels {
		workers = nMorsels
	}
	for w := 0; w < workers; w++ {
		go scanWorker(t, ps.results, ps.claim, ps.cancel, opts, pageCount)
	}
	return ps
}

// scanWorker claims morsels until the cursor runs off the end, decoding
// each into batches. It deliberately holds no reference to the
// parallelScan so an abandoned scan can be collected while stragglers
// finish.
func scanWorker(t *catalog.Table, results []chan morselResult, claim *atomic.Int64, cancel *atomic.Bool, opts Options, pageCount int) {
	for {
		m := int(claim.Add(1) - 1)
		if m >= len(results) {
			return
		}
		if cancel.Load() {
			results[m] <- morselResult{}
			continue
		}
		lo := m * opts.MorselPages
		hi := lo + opts.MorselPages
		if hi > pageCount {
			hi = pageCount
		}
		res := morselResult{}
		batch := make(Batch, 0, opts.BatchSize)
		t.Heap.ScanPages(lo, hi, func(_ storage.RID, rec []byte) bool {
			tup, err := value.DecodeTuple(rec)
			if err != nil {
				res.err = fmt.Errorf("exec: scan %s: %w", t.Name, err)
				return false
			}
			batch = append(batch, tup)
			if len(batch) >= opts.BatchSize {
				res.batches = append(res.batches, batch)
				batch = make(Batch, 0, opts.BatchSize)
			}
			return true
		})
		if len(batch) > 0 {
			res.batches = append(res.batches, batch)
		}
		results[m] <- res
	}
}

func (ps *parallelScan) Schema() *value.Schema { return ps.table.Schema }

func (ps *parallelScan) NextBatch() (Batch, bool, error) {
	if ps.err != nil {
		return nil, false, ps.err
	}
	for {
		if len(ps.pending) > 0 {
			b := ps.pending[0]
			ps.pending = ps.pending[1:]
			return b, false, nil
		}
		if ps.nextMorsel >= len(ps.results) {
			return nil, true, nil
		}
		r := <-ps.results[ps.nextMorsel]
		ps.nextMorsel++
		if r.err != nil {
			ps.err = r.err
			ps.cancel.Store(true)
			return nil, false, ps.err
		}
		ps.pending = r.batches
	}
}

// Close tells the workers to stop claiming real work. Workers never
// block (each morsel channel is buffered for its single send), so there
// is nothing to drain or join.
func (ps *parallelScan) Close() {
	ps.cancel.Store(true)
	ps.pending = nil
	ps.nextMorsel = len(ps.results)
}
