package exec

import (
	"fmt"
	"testing"

	"minequery/internal/catalog"
	"minequery/internal/core"
	"minequery/internal/expr"
	"minequery/internal/mining"
	"minequery/internal/mining/dtree"
	"minequery/internal/opt"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// Plan-equivalence harness: whatever access path the optimizer picks —
// seq scan, index seek, index union, or constant scan — executing it
// must produce exactly the rows of a forced full-table scan with the
// same predicate, at any degree of parallelism. This is the safety net
// under both the cost model (a wrong *choice* only loses performance)
// and the envelope machinery (a wrong *plan* would lose rows).

// equivCheck runs the optimizer's plan and the forced-scan plan and
// compares multisets at DOP 1 and DOP 4.
func equivCheck(t *testing.T, c *catalogAndTable, pred expr.Expr, cfg opt.Config) plan.AccessPath {
	t.Helper()
	res := opt.ChooseAccessPath(c.tb, pred, cfg)
	forced := &plan.Filter{Child: &plan.SeqScan{Table: c.tb.Name}, Pred: pred}
	want, _, err := Run(c.cat, forced)
	if err != nil {
		t.Fatalf("forced scan: %v", err)
	}
	for _, dop := range []int{1, 4} {
		got, _, err := RunOpts(c.cat, res.Plan, Options{DOP: dop, BatchSize: 64})
		if err != nil {
			t.Fatalf("optimized plan (%s, dop=%d): %v", plan.Signature(res.Plan), dop, err)
		}
		if !sameRows(got, want) {
			t.Fatalf("plan %s at dop=%d returned %d rows, forced scan %d",
				plan.Signature(res.Plan), dop, len(got), len(want))
		}
	}
	return res.Path
}

type catalogAndTable struct {
	cat *catalog.Catalog
	tb  *catalog.Table
}

func TestPlanEquivalenceAccessPaths(t *testing.T) {
	cc, tb := testDB(t, 4000)
	db := &catalogAndTable{cat: cc, tb: tb}
	preds := []expr.Expr{
		expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c2")},
		expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(97)},
		expr.NewAnd(
			expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c1")},
			expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(10)},
			expr.Cmp{Col: "num", Op: expr.OpLe, Val: value.Int(14)},
		),
		expr.NewOr(
			expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c0")},
			expr.Cmp{Col: "num", Op: expr.OpEq, Val: value.Int(42)},
		),
		expr.In{Col: "cat", Vals: []value.Value{value.Str("c3"), value.Str("c4")}},
		// Selective enough that a scan wins; still must be equivalent.
		expr.Cmp{Col: "num", Op: expr.OpLe, Val: value.Int(80)},
		// Unsatisfiable: optimizer may emit a constant scan.
		expr.NewAnd(
			expr.Cmp{Col: "num", Op: expr.OpGt, Val: value.Int(50)},
			expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(40)},
		),
		expr.TrueExpr{},
	}
	paths := map[plan.AccessPath]int{}
	for i, pred := range preds {
		t.Run(fmt.Sprintf("pred%d", i), func(t *testing.T) {
			paths[equivCheck(t, db, pred, opt.DefaultConfig())]++
		})
	}
	// The harness is only meaningful if it exercised more than one path
	// shape — guard against cost-model drift making it vacuous.
	if len(paths) < 2 {
		t.Fatalf("all predicates chose the same access path %v; harness is vacuous", paths)
	}
}

// TestPlanEquivalencePartitioned replays the access-path equivalence
// check over a range-partitioned table with skewed partitions (one is
// empty): whatever the optimizer prunes, the surviving-partition plan
// must return exactly the rows of a forced unpruned scan at DOP 1 and 4.
func TestPlanEquivalencePartitioned(t *testing.T) {
	cc := catalog.New()
	// Bounds leave partition [10,12) empty and make partition 3 hold
	// most of the data.
	tb, err := cc.CreatePartitionedTable("pt", value.MustSchema(
		value.Column{Name: "id", Kind: value.KindInt},
		value.Column{Name: "cat", Kind: value.KindString},
		value.Column{Name: "num", Kind: value.KindInt},
	), "num", []value.Value{value.Int(10), value.Int(12), value.Int(20)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		num := int64(i % 100)
		if num >= 10 && num < 12 {
			num = 9 // keep partition [10,12) empty
		}
		if _, err := tb.Insert(value.Tuple{
			value.Int(int64(i)), value.Str(fmt.Sprintf("c%d", i%8)), value.Int(num),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cc.CreateIndex("ix_pt_num", "pt", "num"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Analyze(); err != nil {
		t.Fatal(err)
	}
	db := &catalogAndTable{cat: cc, tb: tb}
	preds := []expr.Expr{
		expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(10)},
		expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(20)},
		expr.Cmp{Col: "num", Op: expr.OpEq, Val: value.Int(11)}, // only the empty partition
		expr.NewAnd(
			expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(5)},
			expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(15)},
		),
		expr.NewOr(
			expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(5)},
			expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(90)},
		),
		expr.In{Col: "num", Vals: []value.Value{value.Int(3), value.Int(50), value.Int(50)}},
		expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c1")}, // non-partition column
		expr.TrueExpr{},
	}
	sawPruning := false
	for i, pred := range preds {
		pred := pred
		t.Run(fmt.Sprintf("pred%d", i), func(t *testing.T) {
			equivCheck(t, db, pred, opt.DefaultConfig())
			if r := opt.ChooseAccessPath(tb, pred, opt.DefaultConfig()); r.PartsPruned > 0 {
				sawPruning = true
			}
		})
	}
	if !sawPruning {
		t.Fatal("no predicate pruned any partition; harness is vacuous")
	}
}

// TestPlanEquivalenceDOPInvariantChoice pins that raising the DOP makes
// scans relatively cheaper: whatever the optimizer chooses, both the
// DOP-1 and DOP-N choices stay row-equivalent to a forced scan.
func TestPlanEquivalenceDOPCosting(t *testing.T) {
	cc, tb := testDB(t, 4000)
	db := &catalogAndTable{cat: cc, tb: tb}
	pred := expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c6")}
	serial := opt.DefaultConfig()
	par := opt.DefaultConfig()
	par.DOP = 8
	equivCheck(t, db, pred, serial)
	equivCheck(t, db, pred, par)
	rs, rp := opt.ChooseAccessPath(tb, pred, serial), opt.ChooseAccessPath(tb, pred, par)
	if rp.ScanCost >= rs.ScanCost {
		t.Fatalf("scan cost did not drop with DOP: serial %.1f, dop8 %.1f", rs.ScanCost, rp.ScanCost)
	}
	if rp.IndexCost != rs.IndexCost {
		t.Fatalf("index cost must stay serial: %.1f vs %.1f", rs.IndexCost, rp.IndexCost)
	}
}

// TestPlanEquivalenceColumnar replays the equivalence check on a
// columnar-enabled table: the vectorized column-group scan with
// adaptive term ordering must return exactly the rows of the forced
// row-heap scan at DOP 1 and 4, including on deeply nested OR/AND
// shapes with empty disjuncts, duplicate terms, and all-false/all-true
// branches.
func TestPlanEquivalenceColumnar(t *testing.T) {
	cc, tb := testDB(t, 4000)
	if err := tb.EnableColumnar(); err != nil {
		t.Fatal(err)
	}
	if !tb.ColumnarReady() {
		t.Fatal("columnar sidecar not fresh after EnableColumnar")
	}
	db := &catalogAndTable{cat: cc, tb: tb}
	preds := []expr.Expr{
		// Wide disjunction: the adaptive OR ordering's home turf.
		expr.NewOr(
			expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c0")},
			expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(95)},
			expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(3)},
			expr.In{Col: "cat", Vals: []value.Value{value.Str("c5"), value.Str("c6")}},
		),
		// Conjunction with a duplicated term and a vacuous TRUE branch.
		expr.NewAnd(
			expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(20)},
			expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(20)},
			expr.TrueExpr{},
			expr.Cmp{Col: "num", Op: expr.OpLe, Val: value.Int(60)},
		),
		// Deep nesting: OR of ANDs of ORs, with an empty disjunct (false)
		// and an all-false branch.
		expr.NewOr(
			expr.Or{},
			expr.NewAnd(
				expr.NewOr(
					expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c1")},
					expr.Cmp{Col: "cat", Op: expr.OpEq, Val: value.Str("c2")},
				),
				expr.Cmp{Col: "num", Op: expr.OpLt, Val: value.Int(50)},
			),
			expr.NewAnd(
				expr.FalseExpr{},
				expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(0)},
			),
		),
		// Empty conjunct (true) inside a NOT: everything, then nothing.
		expr.Not{Kid: expr.NewOr(expr.And{}, expr.FalseExpr{})},
		// Single-kid combiners collapse; counters must survive that.
		expr.Or{Kids: []expr.Expr{expr.And{Kids: []expr.Expr{
			expr.Cmp{Col: "num", Op: expr.OpEq, Val: value.Int(42)},
		}}}},
		expr.TrueExpr{},
	}
	sawColumnar := false
	for i, pred := range preds {
		pred := pred
		t.Run(fmt.Sprintf("pred%d", i), func(t *testing.T) {
			res := opt.ChooseAccessPath(db.tb, pred, opt.DefaultConfig())
			if s, ok := res.Plan.(*plan.SeqScan); ok && s.Columnar {
				sawColumnar = true
			}
			equivCheck(t, db, pred, opt.DefaultConfig())
			// Force the columnar scan shape regardless of the optimizer's
			// choice, so every predicate exercises the vectorized path.
			columnar := &plan.Filter{
				Child: &plan.SeqScan{Table: db.tb.Name, Columnar: true},
				Pred:  pred,
			}
			forced := &plan.Filter{Child: &plan.SeqScan{Table: db.tb.Name}, Pred: pred}
			want, _, err := Run(db.cat, forced)
			if err != nil {
				t.Fatal(err)
			}
			for _, dop := range []int{1, 4} {
				got, _, err := RunOpts(db.cat, columnar, Options{DOP: dop, BatchSize: 64})
				if err != nil {
					t.Fatalf("columnar dop=%d: %v", dop, err)
				}
				if !sameRows(got, want) {
					t.Fatalf("columnar scan at dop=%d returned %d rows, forced row scan %d",
						dop, len(got), len(want))
				}
			}
		})
	}
	if !sawColumnar {
		t.Fatal("optimizer never flagged a columnar scan; harness is vacuous")
	}
}

// TestPlanEquivalenceMiningPredicate runs the paper's full pipeline:
// train a model on the table, derive upper envelopes, let the optimizer
// pick an access path for the envelope, and check that
// Filter(class) ∘ Predict ∘ <chosen path for envelope> matches
// Filter(class) ∘ Predict ∘ SeqScan at DOP 1 and 4.
func TestPlanEquivalenceMiningPredicate(t *testing.T) {
	cc, tb := testDB(t, 3000)

	// Label rows by a num threshold with the label column NOT derivable
	// from any index, then train a depth-limited tree on num alone.
	ts := &mining.TrainSet{Schema: value.MustSchema(value.Column{Name: "num", Kind: value.KindInt})}
	tb.Heap.Scan(func(_ storage.RID, rec []byte) bool {
		row, err := value.DecodeTuple(rec)
		if err != nil {
			t.Fatal(err)
		}
		num := row[2]
		ts.Rows = append(ts.Rows, value.Tuple{num})
		cls := "low"
		if num.AsInt() >= 90 {
			cls = "high" // ~10% of rows: index-friendly class region
		}
		ts.Labels = append(ts.Labels, value.Str(cls))
		return true
	})
	m, err := dtree.Train("dt", "cls", ts, dtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	der, err := core.UpperEnvelopes(m, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cc.RegisterModel(m, der.Envelopes)

	for _, cls := range m.Classes() {
		env := der.Envelopes[cls.String()]
		if env == nil {
			t.Fatalf("no envelope for class %s", cls)
		}
		res := opt.ChooseAccessPath(tb, env, opt.DefaultConfig())
		classPred := expr.Cmp{Col: "dt.cls", Op: expr.OpEq, Val: cls}
		optimized := &plan.Filter{
			Child: &plan.Predict{Child: res.Plan, Model: "dt", As: "dt.cls"},
			Pred:  classPred,
		}
		forced := &plan.Filter{
			Child: &plan.Predict{Child: &plan.SeqScan{Table: "t"}, Model: "dt", As: "dt.cls"},
			Pred:  classPred,
		}
		want, _, err := Run(cc, forced)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("class %s matches no rows; test data is degenerate", cls)
		}
		for _, dop := range []int{1, 4} {
			got, _, err := RunOpts(cc, optimized, Options{DOP: dop, BatchSize: 64})
			if err != nil {
				t.Fatalf("class %s dop=%d: %v", cls, dop, err)
			}
			if !sameRows(got, want) {
				t.Fatalf("class %s dop=%d: envelope plan %s returned %d rows, want %d",
					cls, dop, plan.Signature(res.Plan), len(got), len(want))
			}
		}
	}
}
