// Package exec interprets physical plans as Volcano-style iterators over
// the catalog's tables. Index accesses fetch rows by RID (counted as
// random page reads by the storage layer), sequential scans read pages
// in order, and PredictionJoin applies a mining model row by row — the
// three behaviours whose relative costs the paper's experiments measure.
package exec

import (
	"bytes"
	"fmt"
	"sort"

	"minequery/internal/btree"
	"minequery/internal/catalog"
	"minequery/internal/expr"
	"minequery/internal/mining"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// Iterator produces tuples one at a time. After Next returns done=true
// or an error, the iterator must not be used again.
type Iterator interface {
	// Schema describes the tuples the iterator produces.
	Schema() *value.Schema
	// Next returns the next tuple. done is true when the input is
	// exhausted (and the tuple is nil).
	Next() (t value.Tuple, done bool, err error)
	// Close releases resources. It is safe to call more than once.
	Close()
}

// Build compiles a physical plan into an iterator tree.
func Build(c *catalog.Catalog, n plan.Node) (Iterator, error) {
	return buildNode(c, n, nil)
}

// buildNode compiles one plan node, attributing leaf I/O to io when a
// per-query counter sink is supplied.
func buildNode(c *catalog.Catalog, n plan.Node, io *storage.Counters) (Iterator, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		return newSeqScan(t, io), nil
	case *plan.ConstScan:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		return &constScan{schema: t.Schema}, nil
	case *plan.IndexSeek:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		rids, err := seekRIDs(t, x)
		if err != nil {
			return nil, err
		}
		return newRIDFetch(t, rids, io), nil
	case *plan.IndexUnion:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		seen := make(map[storage.RID]bool)
		var rids []storage.RID
		for _, s := range x.Seeks {
			sub, err := seekRIDs(t, s)
			if err != nil {
				return nil, err
			}
			for _, r := range sub {
				if !seen[r] {
					seen[r] = true
					rids = append(rids, r)
				}
			}
		}
		// Fetch in heap order to keep random I/O monotone.
		sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
		return newRIDFetch(t, rids, io), nil
	case *plan.Filter:
		child, err := buildNode(c, x.Child, io)
		if err != nil {
			return nil, err
		}
		return &filter{child: child, pred: x.Pred}, nil
	case *plan.Project:
		child, err := buildNode(c, x.Child, io)
		if err != nil {
			return nil, err
		}
		return newProject(child, x.Cols)
	case *plan.Predict:
		child, err := buildNode(c, x.Child, io)
		if err != nil {
			return nil, err
		}
		me, ok := c.Model(x.Model)
		if !ok {
			return nil, fmt.Errorf("exec: no model %q", x.Model)
		}
		if x.Version != 0 && me.Version != x.Version {
			return nil, fmt.Errorf("exec: plan invalidated: model %q is v%d, plan was optimized at v%d",
				x.Model, me.Version, x.Version)
		}
		return newPredict(child, me, x.As)
	case *plan.Limit:
		child, err := buildNode(c, x.Child, io)
		if err != nil {
			return nil, err
		}
		return &limit{child: child, n: x.N}, nil
	}
	return nil, fmt.Errorf("exec: unknown plan node %T", n)
}

// Run builds and drains a plan, returning all produced tuples.
func Run(c *catalog.Catalog, n plan.Node) ([]value.Tuple, *value.Schema, error) {
	it, err := Build(c, n)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	var out []value.Tuple
	for {
		t, done, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if done {
			return out, it.Schema(), nil
		}
		out = append(out, t)
	}
}

// seqScan streams a table heap.
type seqScan struct {
	table *catalog.Table
	rows  []value.Tuple
	pos   int
	err   error
}

func newSeqScan(t *catalog.Table, io *storage.Counters) *seqScan {
	// Materialize the scan: the heap callback API does not suspend, and
	// decoded rows are small. Page-read accounting happens here.
	s := &seqScan{table: t}
	t.Heap.ScanPagesInto(io, 0, t.Heap.PageCount(), func(_ storage.RID, rec []byte) bool {
		tup, err := value.DecodeTuple(rec)
		if err != nil {
			s.err = fmt.Errorf("exec: scan %s: %w", t.Name, err)
			return false
		}
		s.rows = append(s.rows, tup)
		return true
	})
	return s
}

func (s *seqScan) Schema() *value.Schema { return s.table.Schema }

func (s *seqScan) Next() (value.Tuple, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if s.pos >= len(s.rows) {
		return nil, true, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, false, nil
}

func (s *seqScan) Close() { s.rows = nil }

// constScan produces nothing.
type constScan struct{ schema *value.Schema }

func (c *constScan) Schema() *value.Schema            { return c.schema }
func (c *constScan) Next() (value.Tuple, bool, error) { return nil, true, nil }
func (c *constScan) Close()                           {}

// seekRIDs evaluates one index seek, returning matching RIDs.
func seekRIDs(t *catalog.Table, s *plan.IndexSeek) ([]storage.RID, error) {
	ix := findIndexByName(t, s.Index)
	if ix == nil {
		return nil, fmt.Errorf("exec: no index %q on %s", s.Index, s.Table)
	}
	if len(s.EqVals) > len(ix.Columns) {
		return nil, fmt.Errorf("exec: seek on %s.%s uses %d equality values, index has %d columns",
			s.Table, s.Index, len(s.EqVals), len(ix.Columns))
	}
	var prefix []byte
	for _, v := range s.EqVals {
		prefix = v.SortKey(prefix)
	}
	lo := prefix
	if s.Lo != nil {
		lo = s.Lo.Val.SortKey(append([]byte(nil), prefix...))
	}
	var hi []byte
	switch {
	case s.Hi != nil:
		// Inclusive-by-construction upper bound: trailing index columns
		// make composite keys extend past the bound value, so append a
		// 0xFF sentinel (no SortKey encoding starts with 0xFF). Rows
		// matching an exclusive bound exactly are dropped by the
		// residual filter — a safe overscan.
		hi = s.Hi.Val.SortKey(append([]byte(nil), prefix...))
		hi = append(hi, 0xFF)
	case len(prefix) > 0:
		hi = append(append([]byte(nil), prefix...), 0xFF)
	}
	var rids []storage.RID
	ix.Tree.AscendRange(lo, hi, true, true, func(e btree.Entry) bool {
		if len(prefix) > 0 && !bytes.HasPrefix(e.Key, prefix) {
			return false
		}
		rids = append(rids, e.RID)
		return true
	})
	return rids, nil
}

func findIndexByName(t *catalog.Table, name string) *catalog.Index {
	for _, ix := range t.Indexes() {
		if equalFold(ix.Name, name) {
			return ix
		}
	}
	return nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// ridFetch fetches rows for a RID list.
type ridFetch struct {
	table *catalog.Table
	io    *storage.Counters
	rids  []storage.RID
	pos   int
}

func newRIDFetch(t *catalog.Table, rids []storage.RID, io *storage.Counters) *ridFetch {
	return &ridFetch{table: t, io: io, rids: rids}
}

func (r *ridFetch) Schema() *value.Schema { return r.table.Schema }

func (r *ridFetch) Next() (value.Tuple, bool, error) {
	for r.pos < len(r.rids) {
		rid := r.rids[r.pos]
		r.pos++
		tup, ok, err := r.table.FetchInto(r.io, rid)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return tup, false, nil
		}
		// Row deleted since the index was read: skip.
	}
	return nil, true, nil
}

func (r *ridFetch) Close() { r.rids = nil }

// filter drops tuples failing the predicate.
type filter struct {
	child Iterator
	pred  expr.Expr
}

func (f *filter) Schema() *value.Schema { return f.child.Schema() }

func (f *filter) Next() (value.Tuple, bool, error) {
	for {
		t, done, err := f.child.Next()
		if done || err != nil {
			return nil, done, err
		}
		if f.pred.Eval(f.child.Schema(), t) {
			return t, false, nil
		}
	}
}

func (f *filter) Close() { f.child.Close() }

// project narrows columns.
type project struct {
	child  Iterator
	ords   []int
	schema *value.Schema
}

func newProject(child Iterator, cols []string) (Iterator, error) {
	if len(cols) == 0 {
		return child, nil
	}
	ords, schema, err := projectOrds(child.Schema(), cols)
	if err != nil {
		return nil, err
	}
	return &project{child: child, ords: ords, schema: schema}, nil
}

// projectOrds resolves projection columns against the input schema,
// shared by the tuple and batch projection operators.
func projectOrds(in *value.Schema, cols []string) ([]int, *value.Schema, error) {
	ords := make([]int, len(cols))
	outCols := make([]value.Column, len(cols))
	for i, c := range cols {
		o := in.Ordinal(c)
		if o < 0 {
			return nil, nil, fmt.Errorf("exec: project: no column %q", c)
		}
		ords[i] = o
		outCols[i] = in.Col(o)
	}
	schema, err := value.NewSchema(outCols...)
	if err != nil {
		return nil, nil, fmt.Errorf("exec: project: %w", err)
	}
	return ords, schema, nil
}

func (p *project) Schema() *value.Schema { return p.schema }

func (p *project) Next() (value.Tuple, bool, error) {
	t, done, err := p.child.Next()
	if done || err != nil {
		return nil, done, err
	}
	out := make(value.Tuple, len(p.ords))
	for i, o := range p.ords {
		out[i] = t[o]
	}
	return out, false, nil
}

func (p *project) Close() { p.child.Close() }

// predict appends the model's predicted class as a new column.
type predict struct {
	child   Iterator
	binding mining.Binding
	schema  *value.Schema
	buf     value.Tuple
}

func newPredict(child Iterator, me *catalog.ModelEntry, as string) (Iterator, error) {
	b, schema, err := predictBinding(child.Schema(), me, as)
	if err != nil {
		return nil, err
	}
	return &predict{
		child:   child,
		binding: b,
		schema:  schema,
		buf:     make(value.Tuple, len(b.Ordinals)),
	}, nil
}

// predictBinding resolves a model against the input schema and builds
// the output schema with the predicted column appended, shared by the
// tuple and batch prediction-join operators.
func predictBinding(in *value.Schema, me *catalog.ModelEntry, as string) (mining.Binding, *value.Schema, error) {
	b, ok := mining.Bind(me.Model, in)
	if !ok {
		return mining.Binding{}, nil, fmt.Errorf("exec: model %q input columns %v not all present in %s",
			me.Model.Name(), me.Model.InputColumns(), in)
	}
	kind := value.KindString
	if cls := me.Model.Classes(); len(cls) > 0 {
		kind = cls[0].Kind()
	}
	cols := append(append([]value.Column(nil), in.Columns...), value.Column{Name: as, Kind: kind})
	schema, err := value.NewSchema(cols...)
	if err != nil {
		return mining.Binding{}, nil, fmt.Errorf("exec: prediction join: %w", err)
	}
	return b, schema, nil
}

func (p *predict) Schema() *value.Schema { return p.schema }

func (p *predict) Next() (value.Tuple, bool, error) {
	t, done, err := p.child.Next()
	if done || err != nil {
		return nil, done, err
	}
	cls := p.binding.PredictInto(t, p.buf)
	out := make(value.Tuple, len(t)+1)
	copy(out, t)
	out[len(t)] = cls
	return out, false, nil
}

func (p *predict) Close() { p.child.Close() }

// limit stops after n rows.
type limit struct {
	child Iterator
	n     int64
	seen  int64
}

func (l *limit) Schema() *value.Schema { return l.child.Schema() }

func (l *limit) Next() (value.Tuple, bool, error) {
	if l.seen >= l.n {
		return nil, true, nil
	}
	t, done, err := l.child.Next()
	if done || err != nil {
		return nil, done, err
	}
	l.seen++
	return t, false, nil
}

func (l *limit) Close() { l.child.Close() }
