// Package exec interprets physical plans as Volcano-style iterators over
// the catalog's tables. Index accesses fetch rows by RID (counted as
// random page reads by the storage layer), sequential scans read pages
// in order, and PredictionJoin applies a mining model row by row — the
// three behaviours whose relative costs the paper's experiments measure.
package exec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"minequery/internal/btree"
	"minequery/internal/catalog"
	"minequery/internal/expr"
	"minequery/internal/fault"
	"minequery/internal/mining"
	"minequery/internal/plan"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// Iterator produces tuples one at a time. After Next returns done=true
// or an error, the iterator must not be used again.
type Iterator interface {
	// Schema describes the tuples the iterator produces.
	Schema() *value.Schema
	// Next returns the next tuple. done is true when the input is
	// exhausted (and the tuple is nil).
	Next() (t value.Tuple, done bool, err error)
	// Close releases resources. It is safe to call more than once.
	Close()
}

// Build compiles a physical plan into an iterator tree.
func Build(c *catalog.Catalog, n plan.Node) (Iterator, error) {
	return buildNode(context.Background(), c, n, Options{})
}

// buildNode compiles one plan node. The options carry the per-query
// counter sink (via the Collector), the fault injector, and the retry
// policy; ctx interrupts the RID-list materialization that index access
// paths perform at build time.
func buildNode(ctx context.Context, c *catalog.Catalog, n plan.Node, opts Options) (Iterator, error) {
	switch x := n.(type) {
	case *plan.SeqScan:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		return newSeqScan(ctx, t, x, opts), nil
	case *plan.ConstScan:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		return &constScan{schema: t.Schema}, nil
	case *plan.IndexSeek:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		rids, err := seekRIDs(ctx, t, x, opts)
		if err != nil {
			return nil, err
		}
		return newRIDFetch(ctx, t, rids, opts), nil
	case *plan.IndexUnion:
		t, ok := c.Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: no table %q", x.Table)
		}
		seen := make(map[storage.RID]bool)
		var rids []storage.RID
		for _, s := range x.Seeks {
			// A deadline can expire mid-union: stop between arms rather
			// than completing the remaining seeks for a dead query.
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			sub, err := seekRIDs(ctx, t, s, opts)
			if err != nil {
				return nil, err
			}
			for _, r := range sub {
				if !seen[r] {
					seen[r] = true
					rids = append(rids, r)
				}
			}
		}
		// Fetch in heap order to keep random I/O monotone.
		sort.Slice(rids, func(i, j int) bool { return rids[i].Less(rids[j]) })
		return newRIDFetch(ctx, t, rids, opts), nil
	case *plan.Filter:
		child, err := buildNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		return &filter{child: child, pred: x.Pred}, nil
	case *plan.Project:
		child, err := buildNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		return newProject(child, x.Cols)
	case *plan.Predict:
		child, err := buildNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		me, ok := c.Model(x.Model)
		if !ok {
			return nil, fmt.Errorf("exec: no model %q", x.Model)
		}
		if x.Version != 0 && me.Version != x.Version {
			return nil, fmt.Errorf("exec: plan invalidated: model %q is v%d, plan was optimized at v%d",
				x.Model, me.Version, x.Version)
		}
		return newPredict(child, me, x.As)
	case *plan.Limit:
		child, err := buildNode(ctx, c, x.Child, opts)
		if err != nil {
			return nil, err
		}
		return &limit{child: child, n: x.N}, nil
	}
	return nil, fmt.Errorf("exec: unknown plan node %T", n)
}

// Run builds and drains a plan, returning all produced tuples.
func Run(c *catalog.Catalog, n plan.Node) ([]value.Tuple, *value.Schema, error) {
	it, err := Build(c, n)
	if err != nil {
		return nil, nil, err
	}
	defer it.Close()
	var out []value.Tuple
	for {
		t, done, err := it.Next()
		if err != nil {
			return nil, nil, err
		}
		if done {
			return out, it.Schema(), nil
		}
		out = append(out, t)
	}
}

// seqScan streams a table heap.
type seqScan struct {
	table *catalog.Table
	rows  []value.Tuple
	pos   int
	err   error
}

func newSeqScan(ctx context.Context, t *catalog.Table, x *plan.SeqScan, opts Options) *seqScan {
	// Materialize the scan: the heap callback API does not suspend, and
	// decoded rows are small. Page-read accounting happens here.
	s := &seqScan{table: t}
	decode := func(_ storage.RID, rec []byte) bool {
		tup, derr := value.DecodeTuple(rec)
		if derr != nil {
			s.err = fmt.Errorf("exec: scan %s: %w", t.Name, derr)
			return false
		}
		s.rows = append(s.rows, tup)
		return true
	}
	for _, r := range t.PartitionPageRanges(x.Partitions) {
		if s.err != nil {
			break
		}
		if err := scanPagesRetry(ctx, t, opts, r[0], r[1], decode); err != nil && s.err == nil {
			s.err = fmt.Errorf("exec: scan %s: %w", t.Name, err)
		}
	}
	return s
}

// scanPagesRetry scans heap pages [lo, hi) of t one page at a time,
// checking ctx between pages and retrying each page's read under the
// options' retry policy. Storage errors fire at page granularity before
// any record of the failing page is delivered, so a retried page never
// double-delivers rows to fn. With retrying disabled and no injector the
// whole range goes through a single ScanPagesInto call — the production
// fast path is unchanged.
func scanPagesRetry(ctx context.Context, t *catalog.Table, opts Options, lo, hi int, fn func(storage.RID, []byte) bool) error {
	io := ioOf(opts.Collector)
	if !opts.Retry.Enabled() && opts.Faults == nil {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		return t.Heap.ScanPagesInto(io, lo, hi, fn)
	}
	onRetry := opts.onRetry()
	for pi := lo; pi < hi; pi++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		page := pi
		if err := fault.Retry(ctx, opts.Clock, opts.Retry, func() error {
			return t.Heap.ScanPagesInto(io, page, page+1, fn)
		}, onRetry); err != nil {
			return err
		}
	}
	return nil
}

func (s *seqScan) Schema() *value.Schema { return s.table.Schema }

func (s *seqScan) Next() (value.Tuple, bool, error) {
	if s.err != nil {
		return nil, false, s.err
	}
	if s.pos >= len(s.rows) {
		return nil, true, nil
	}
	t := s.rows[s.pos]
	s.pos++
	return t, false, nil
}

func (s *seqScan) Close() { s.rows = nil }

// constScan produces nothing.
type constScan struct{ schema *value.Schema }

func (c *constScan) Schema() *value.Schema            { return c.schema }
func (c *constScan) Next() (value.Tuple, bool, error) { return nil, true, nil }
func (c *constScan) Close()                           {}

// errStopSeek stops an index range scan early when composite keys run
// past the seek prefix; it never escapes seekRIDs.
var errStopSeek = errors.New("seek prefix exhausted")

// seekCtxStride is how many index entries a seek visits between context
// checks: frequent enough that a deadline interrupts a large seek within
// microseconds, rare enough to stay off the per-entry hot path.
const seekCtxStride = 1024

// seekRIDs evaluates one index seek, returning matching RIDs. The seek
// is an idempotent read, so a transiently failing one (injected via
// fault.SiteIndexSeek) is retried whole under the options' policy; ctx
// is checked every seekCtxStride entries so deadlines interrupt seeks
// over large key ranges mid-flight.
func seekRIDs(ctx context.Context, t *catalog.Table, s *plan.IndexSeek, opts Options) ([]storage.RID, error) {
	ix := findIndexByName(t, s.Index)
	if ix == nil {
		return nil, fmt.Errorf("exec: no index %q on %s", s.Index, s.Table)
	}
	if len(s.EqVals) > len(ix.Columns) {
		return nil, fmt.Errorf("exec: seek on %s.%s uses %d equality values, index has %d columns",
			s.Table, s.Index, len(s.EqVals), len(ix.Columns))
	}
	var prefix []byte
	for _, v := range s.EqVals {
		prefix = v.SortKey(prefix)
	}
	lo := prefix
	if s.Lo != nil {
		lo = s.Lo.Val.SortKey(append([]byte(nil), prefix...))
	}
	var hi []byte
	switch {
	case s.Hi != nil:
		// Inclusive-by-construction upper bound: trailing index columns
		// make composite keys extend past the bound value, so append a
		// 0xFF sentinel (no SortKey encoding starts with 0xFF). Rows
		// matching an exclusive bound exactly are dropped by the
		// residual filter — a safe overscan.
		hi = s.Hi.Val.SortKey(append([]byte(nil), prefix...))
		hi = append(hi, 0xFF)
	case len(prefix) > 0:
		hi = append(append([]byte(nil), prefix...), 0xFF)
	}
	var rids []storage.RID
	attempt := func() error {
		if err := opts.Faults.Hit(fault.SiteIndexSeek); err != nil {
			return fmt.Errorf("exec: seek %s.%s: %w", s.Table, s.Index, err)
		}
		rids = rids[:0]
		visited := 0
		err := ix.Tree.AscendRangeErr(lo, hi, true, true, func(e btree.Entry) error {
			if len(prefix) > 0 && !bytes.HasPrefix(e.Key, prefix) {
				return errStopSeek
			}
			visited++
			if visited%seekCtxStride == 0 {
				if cerr := ctxErr(ctx); cerr != nil {
					return cerr
				}
			}
			rids = append(rids, e.RID)
			return nil
		})
		if err == errStopSeek {
			return nil
		}
		return err
	}
	if err := fault.Retry(ctx, opts.Clock, opts.Retry, attempt, opts.onRetry()); err != nil {
		return nil, err
	}
	return rids, nil
}

func findIndexByName(t *catalog.Table, name string) *catalog.Index {
	for _, ix := range t.Indexes() {
		if equalFold(ix.Name, name) {
			return ix
		}
	}
	return nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// ridFetchCtxStride is how many RID lookups happen between context
// checks: a cancelled query stops fetching within this many random
// reads.
const ridFetchCtxStride = 64

// ridFetch fetches rows for a RID list. Each lookup is retried under
// the options' policy when the random page read fails transiently, and
// ctx is checked every ridFetchCtxStride lookups so per-query deadlines
// interrupt long RID lists between (not just after) fetches.
type ridFetch struct {
	ctx     context.Context
	table   *catalog.Table
	io      *storage.Counters
	rids    []storage.RID
	pos     int
	retry   fault.RetryPolicy
	clock   fault.Clock
	onRetry func(error)
}

func newRIDFetch(ctx context.Context, t *catalog.Table, rids []storage.RID, opts Options) *ridFetch {
	return &ridFetch{ctx: ctx, table: t, io: ioOf(opts.Collector), rids: rids,
		retry: opts.Retry, clock: opts.Clock, onRetry: opts.onRetry()}
}

func (r *ridFetch) Schema() *value.Schema { return r.table.Schema }

func (r *ridFetch) Next() (value.Tuple, bool, error) {
	for r.pos < len(r.rids) {
		rid := r.rids[r.pos]
		r.pos++
		if r.pos%ridFetchCtxStride == 0 {
			if err := ctxErr(r.ctx); err != nil {
				return nil, false, err
			}
		}
		var tup value.Tuple
		var ok bool
		err := fault.Retry(r.ctx, r.clock, r.retry, func() error {
			var ferr error
			tup, ok, ferr = r.table.FetchInto(r.io, rid)
			return ferr
		}, r.onRetry)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return tup, false, nil
		}
		// Row deleted since the index was read: skip.
	}
	return nil, true, nil
}

func (r *ridFetch) Close() { r.rids = nil }

// filter drops tuples failing the predicate.
type filter struct {
	child Iterator
	pred  expr.Expr
}

func (f *filter) Schema() *value.Schema { return f.child.Schema() }

func (f *filter) Next() (value.Tuple, bool, error) {
	for {
		t, done, err := f.child.Next()
		if done || err != nil {
			return nil, done, err
		}
		if f.pred.Eval(f.child.Schema(), t) {
			return t, false, nil
		}
	}
}

func (f *filter) Close() { f.child.Close() }

// project narrows columns.
type project struct {
	child  Iterator
	ords   []int
	schema *value.Schema
}

func newProject(child Iterator, cols []string) (Iterator, error) {
	if len(cols) == 0 {
		return child, nil
	}
	ords, schema, err := projectOrds(child.Schema(), cols)
	if err != nil {
		return nil, err
	}
	return &project{child: child, ords: ords, schema: schema}, nil
}

// projectOrds resolves projection columns against the input schema,
// shared by the tuple and batch projection operators.
func projectOrds(in *value.Schema, cols []string) ([]int, *value.Schema, error) {
	ords := make([]int, len(cols))
	outCols := make([]value.Column, len(cols))
	for i, c := range cols {
		o := in.Ordinal(c)
		if o < 0 {
			return nil, nil, fmt.Errorf("exec: project: no column %q", c)
		}
		ords[i] = o
		outCols[i] = in.Col(o)
	}
	schema, err := value.NewSchema(outCols...)
	if err != nil {
		return nil, nil, fmt.Errorf("exec: project: %w", err)
	}
	return ords, schema, nil
}

func (p *project) Schema() *value.Schema { return p.schema }

func (p *project) Next() (value.Tuple, bool, error) {
	t, done, err := p.child.Next()
	if done || err != nil {
		return nil, done, err
	}
	out := make(value.Tuple, len(p.ords))
	for i, o := range p.ords {
		out[i] = t[o]
	}
	return out, false, nil
}

func (p *project) Close() { p.child.Close() }

// predict appends the model's predicted class as a new column.
type predict struct {
	child   Iterator
	binding mining.Binding
	schema  *value.Schema
	buf     value.Tuple
}

func newPredict(child Iterator, me *catalog.ModelEntry, as string) (Iterator, error) {
	b, schema, err := predictBinding(child.Schema(), me, as)
	if err != nil {
		return nil, err
	}
	return &predict{
		child:   child,
		binding: b,
		schema:  schema,
		buf:     make(value.Tuple, len(b.Ordinals)),
	}, nil
}

// predictBinding resolves a model against the input schema and builds
// the output schema with the predicted column appended, shared by the
// tuple and batch prediction-join operators.
func predictBinding(in *value.Schema, me *catalog.ModelEntry, as string) (mining.Binding, *value.Schema, error) {
	b, ok := mining.Bind(me.Model, in)
	if !ok {
		return mining.Binding{}, nil, fmt.Errorf("exec: model %q input columns %v not all present in %s",
			me.Model.Name(), me.Model.InputColumns(), in)
	}
	kind := value.KindString
	if cls := me.Model.Classes(); len(cls) > 0 {
		kind = cls[0].Kind()
	}
	cols := append(append([]value.Column(nil), in.Columns...), value.Column{Name: as, Kind: kind})
	schema, err := value.NewSchema(cols...)
	if err != nil {
		return mining.Binding{}, nil, fmt.Errorf("exec: prediction join: %w", err)
	}
	return b, schema, nil
}

func (p *predict) Schema() *value.Schema { return p.schema }

func (p *predict) Next() (value.Tuple, bool, error) {
	t, done, err := p.child.Next()
	if done || err != nil {
		return nil, done, err
	}
	cls := p.binding.PredictInto(t, p.buf)
	out := make(value.Tuple, len(t)+1)
	copy(out, t)
	out[len(t)] = cls
	return out, false, nil
}

func (p *predict) Close() { p.child.Close() }

// limit stops after n rows.
type limit struct {
	child Iterator
	n     int64
	seen  int64
}

func (l *limit) Schema() *value.Schema { return l.child.Schema() }

func (l *limit) Next() (value.Tuple, bool, error) {
	if l.seen >= l.n {
		return nil, true, nil
	}
	t, done, err := l.child.Next()
	if done || err != nil {
		return nil, done, err
	}
	l.seen++
	return t, false, nil
}

func (l *limit) Close() { l.child.Close() }
