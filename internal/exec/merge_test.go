package exec

import (
	"reflect"
	"testing"
)

func TestMergeOrdered(t *testing.T) {
	parts := [][]int{{1, 2}, nil, {3}, {4, 5, 6}}
	cases := []struct {
		name  string
		limit int64
		want  []int
	}{
		{"no-limit", -1, []int{1, 2, 3, 4, 5, 6}},
		{"limit-zero", 0, []int{}},
		{"limit-mid-source", 4, []int{1, 2, 3, 4}},
		{"limit-on-boundary", 3, []int{1, 2, 3}},
		{"limit-over", 99, []int{1, 2, 3, 4, 5, 6}},
	}
	for _, tc := range cases {
		got := MergeOrdered(parts, tc.limit)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: MergeOrdered = %v, want %v", tc.name, got, tc.want)
		}
	}
	if got := MergeOrdered[int](nil, -1); len(got) != 0 {
		t.Errorf("nil parts: got %v", got)
	}
}
