package exec

import (
	"context"
	"fmt"

	"minequery/internal/catalog"
	"minequery/internal/expr"
	"minequery/internal/storage"
	"minequery/internal/value"
)

// MatchedRow is one row selected by a DML predicate: the RID to mutate
// and the decoded tuple (needed to build an updated row and to maintain
// indexes).
type MatchedRow struct {
	RID storage.RID
	Row value.Tuple
}

// CollectMatches scans t and returns every live row matching pred (nil
// matches everything), in heap order. It is the read side of
// UPDATE/DELETE: the engine collects the victim set first, then applies
// the mutations, so a statement never observes its own writes. The scan
// goes through the same retry-wrapped page reader as queries, so
// injected transient page faults are retried, not surfaced.
func CollectMatches(ctx context.Context, t *catalog.Table, pred expr.Expr, opts Options) ([]MatchedRow, error) {
	var out []MatchedRow
	var decodeErr error
	fn := func(rid storage.RID, rec []byte) bool {
		tup, err := value.DecodeTuple(rec)
		if err != nil {
			decodeErr = fmt.Errorf("exec: dml scan %s: corrupt row at %s: %w", t.Name, rid, err)
			return false
		}
		if pred != nil && !pred.Eval(t.Schema, tup) {
			return true
		}
		out = append(out, MatchedRow{RID: rid, Row: tup})
		return true
	}
	if err := scanPagesRetry(ctx, t, opts, 0, t.Heap.PageCount(), fn); err != nil {
		return nil, fmt.Errorf("exec: dml scan %s: %w", t.Name, err)
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	return out, nil
}
