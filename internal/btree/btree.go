// Package btree implements the in-memory B+-tree used for minequery's
// clustered and secondary indexes. Keys are order-preserving byte strings
// (see value.SortKey); entries carry the heap RID of the indexed row.
// Duplicate keys are supported — entries are totally ordered by
// (key, RID), and internal separators carry the full (key, RID) pair so
// equal keys that span a leaf split stay reachable — so a secondary index
// over a low-cardinality column (the common case for the paper's
// class-label envelope predicates) works naturally.
package btree

import (
	"bytes"
	"sync"

	"minequery/internal/storage"
)

// Entry is one index entry.
type Entry struct {
	Key []byte
	RID storage.RID
}

func compareEntries(a, b Entry) int {
	if c := bytes.Compare(a.Key, b.Key); c != 0 {
		return c
	}
	switch {
	case a.RID.Less(b.RID):
		return -1
	case b.RID.Less(a.RID):
		return 1
	}
	return 0
}

type node struct {
	leaf     bool
	entries  []Entry // leaf payload
	seps     []Entry // internal: seps[i] is the smallest entry under children[i+1]
	children []*node
	next     *node // leaf chain for range scans
}

// Tree is a B+-tree. The zero value is not usable; call New.
//
// All methods are safe for concurrent use: mutations (Insert, Delete)
// take the write lock, traversals hold the read lock for their whole
// visit — so a range scan sees one consistent tree, and index
// maintenance from the DML path can interleave with concurrent seeks.
type Tree struct {
	mu     sync.RWMutex
	root   *node
	degree int // max children per internal node; max entries per leaf = degree-1
	size   int
}

// New returns an empty tree with the given degree (fanout). Degrees below
// 4 are raised to 4.
func New(degree int) *Tree {
	if degree < 4 {
		degree = 4
	}
	return &Tree{root: &node{leaf: true}, degree: degree}
}

// Len returns the number of entries.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Height returns the tree height (1 for a single leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	h, n := 1, t.root
	for !n.leaf {
		h++
		n = n.children[0]
	}
	return h
}

func (t *Tree) maxLeaf() int { return t.degree - 1 }

// Insert adds an entry. Duplicate (key, RID) pairs are stored once.
func (t *Tree) Insert(key []byte, rid storage.RID) {
	e := Entry{Key: append([]byte(nil), key...), RID: rid}
	t.mu.Lock()
	defer t.mu.Unlock()
	newChild, sep := t.insert(t.root, e)
	if newChild != nil {
		t.root = &node{
			seps:     []Entry{sep},
			children: []*node{t.root, newChild},
		}
	}
}

// insert places e under n. If n splits, it returns the new right sibling
// and the separator entry (smallest entry of the new sibling's subtree).
func (t *Tree) insert(n *node, e Entry) (*node, Entry) {
	if n.leaf {
		i := searchEntries(n.entries, e)
		if i < len(n.entries) && compareEntries(n.entries[i], e) == 0 {
			return nil, Entry{} // exact duplicate
		}
		n.entries = append(n.entries, Entry{})
		copy(n.entries[i+1:], n.entries[i:])
		n.entries[i] = e
		t.size++
		if len(n.entries) <= t.maxLeaf() {
			return nil, Entry{}
		}
		mid := len(n.entries) / 2
		right := &node{leaf: true, next: n.next}
		right.entries = append(right.entries, n.entries[mid:]...)
		n.entries = n.entries[:mid:mid]
		n.next = right
		return right, right.entries[0]
	}
	ci := childIndex(n.seps, e)
	newChild, sep := t.insert(n.children[ci], e)
	if newChild == nil {
		return nil, Entry{}
	}
	n.seps = append(n.seps, Entry{})
	copy(n.seps[ci+1:], n.seps[ci:])
	n.seps[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.children) <= t.degree {
		return nil, Entry{}
	}
	midSep := len(n.seps) / 2
	upSep := n.seps[midSep]
	right := &node{}
	right.seps = append(right.seps, n.seps[midSep+1:]...)
	right.children = append(right.children, n.children[midSep+1:]...)
	n.seps = n.seps[:midSep:midSep]
	n.children = n.children[: midSep+1 : midSep+1]
	return right, upSep
}

// searchEntries returns the first index i such that entries[i] >= e.
func searchEntries(entries []Entry, e Entry) int {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntries(entries[mid], e) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child to descend into for e: children[i] covers
// entries in [seps[i-1], seps[i]). Descend right when e >= seps[i].
func childIndex(seps []Entry, e Entry) int {
	lo, hi := 0, len(seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if compareEntries(seps[mid], e) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Delete removes the entry (key, rid). It reports whether the entry was
// present. Deletion is lazy: leaves may become underfull (and even
// empty); the structure is not rebalanced. Range scans skip empty leaves.
func (t *Tree) Delete(key []byte, rid storage.RID) bool {
	e := Entry{Key: key, RID: rid}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.seps, e)]
	}
	i := searchEntries(n.entries, e)
	if i >= len(n.entries) || compareEntries(n.entries[i], e) != 0 {
		return false
	}
	n.entries = append(n.entries[:i], n.entries[i+1:]...)
	t.size--
	return true
}

// minRID is the smallest possible RID, used to bias bound probes to the
// leftmost matching leaf.
var minRID = storage.RID{}

// AscendRange visits entries with lo <= key <= hi in ascending (key, RID)
// order. A nil lo means "from the smallest key"; a nil hi means "to the
// largest". loInc/hiInc control bound inclusivity (ignored for nil
// bounds). The callback returning false stops the scan. It returns the
// number of entries visited.
func (t *Tree) AscendRange(lo, hi []byte, loInc, hiInc bool, fn func(Entry) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	if lo == nil {
		for !n.leaf {
			n = n.children[0]
		}
	} else {
		probe := Entry{Key: lo, RID: minRID}
		for !n.leaf {
			n = n.children[childIndex(n.seps, probe)]
		}
	}
	visited := 0
	for ; n != nil; n = n.next {
		for _, e := range n.entries {
			if lo != nil {
				c := bytes.Compare(e.Key, lo)
				if c < 0 || (c == 0 && !loInc) {
					continue
				}
			}
			if hi != nil {
				c := bytes.Compare(e.Key, hi)
				if c > 0 || (c == 0 && !hiInc) {
					return visited
				}
			}
			visited++
			if !fn(e) {
				return visited
			}
		}
	}
	return visited
}

// AscendRangeErr is AscendRange with an error-propagating callback: the
// first non-nil error stops the scan and is returned. Seek paths use it
// to surface context cancellation and injected faults from inside the
// per-entry callback without sentinel booleans.
func (t *Tree) AscendRangeErr(lo, hi []byte, loInc, hiInc bool, fn func(Entry) error) error {
	var err error
	t.AscendRange(lo, hi, loInc, hiInc, func(e Entry) bool {
		err = fn(e)
		return err == nil
	})
	return err
}

// AscendEqual visits all entries whose key equals key.
func (t *Tree) AscendEqual(key []byte, fn func(Entry) bool) int {
	return t.AscendRange(key, key, true, true, fn)
}

// Min returns the smallest entry, if any.
func (t *Tree) Min() (Entry, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for ; n != nil; n = n.next {
		if len(n.entries) > 0 {
			return n.entries[0], true
		}
	}
	return Entry{}, false
}
