package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"minequery/internal/storage"
)

func key(s string) []byte { return []byte(s) }

func rid(i int) storage.RID {
	return storage.RID{Page: uint32(i / 100), Slot: uint16(i % 100)}
}

func collect(t *Tree, lo, hi []byte, loInc, hiInc bool) []Entry {
	var out []Entry
	t.AscendRange(lo, hi, loInc, hiInc, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

func TestInsertAndFullScan(t *testing.T) {
	tr := New(8)
	const n = 5000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		tr.Insert(key(fmt.Sprintf("k%06d", i)), rid(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	got := collect(tr, nil, nil, true, true)
	if len(got) != n {
		t.Fatalf("full scan saw %d entries, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if compareEntries(got[i-1], got[i]) >= 0 {
			t.Fatalf("scan out of order at %d", i)
		}
	}
	if tr.Height() < 3 {
		t.Errorf("expected a multi-level tree for %d entries, height = %d", n, tr.Height())
	}
}

func TestDuplicateKeyVisibility(t *testing.T) {
	// Many entries under few distinct keys force leaf splits inside runs
	// of equal keys; every RID must remain reachable by AscendEqual.
	tr := New(4) // tiny fanout maximizes splits
	const perKey, keys = 500, 5
	for k := 0; k < keys; k++ {
		for i := 0; i < perKey; i++ {
			tr.Insert(key(fmt.Sprintf("dup%d", k)), rid(k*perKey+i))
		}
	}
	for k := 0; k < keys; k++ {
		var got []Entry
		tr.AscendEqual(key(fmt.Sprintf("dup%d", k)), func(e Entry) bool {
			got = append(got, e)
			return true
		})
		if len(got) != perKey {
			t.Fatalf("key dup%d: AscendEqual saw %d entries, want %d", k, len(got), perKey)
		}
	}
}

func TestExactDuplicatePairIgnored(t *testing.T) {
	tr := New(8)
	tr.Insert(key("a"), rid(1))
	tr.Insert(key("a"), rid(1))
	if tr.Len() != 1 {
		t.Fatalf("exact duplicate should be stored once, Len = %d", tr.Len())
	}
}

func TestRangeBounds(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(key(fmt.Sprintf("%03d", i)), rid(i))
	}
	cases := []struct {
		lo, hi       string
		loInc, hiInc bool
		want         int
	}{
		{"010", "020", true, true, 11},
		{"010", "020", false, true, 10},
		{"010", "020", true, false, 10},
		{"010", "020", false, false, 9},
		{"", "", true, true, 100}, // nil handled below
		{"099", "200", true, true, 1},
		{"200", "300", true, true, 0},
	}
	for _, c := range cases {
		var lo, hi []byte
		if c.lo != "" {
			lo = key(c.lo)
		}
		if c.hi != "" {
			hi = key(c.hi)
		}
		got := len(collect(tr, lo, hi, c.loInc, c.hiInc))
		if got != c.want {
			t.Errorf("range [%s,%s] inc=%v,%v: got %d, want %d", c.lo, c.hi, c.loInc, c.hiInc, got, c.want)
		}
	}
	if got := len(collect(tr, nil, key("009"), true, true)); got != 10 {
		t.Errorf("(-inf, 009]: got %d, want 10", got)
	}
	if got := len(collect(tr, key("090"), nil, true, true)); got != 10 {
		t.Errorf("[090, +inf): got %d, want 10", got)
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(key(fmt.Sprintf("%03d", i)), rid(i))
	}
	n := 0
	tr.AscendRange(nil, nil, true, true, func(Entry) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("early stop visited %d, want 7", n)
	}
}

func TestDelete(t *testing.T) {
	tr := New(6)
	for i := 0; i < 1000; i++ {
		tr.Insert(key(fmt.Sprintf("%04d", i)), rid(i))
	}
	for i := 0; i < 1000; i += 2 {
		if !tr.Delete(key(fmt.Sprintf("%04d", i)), rid(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Delete(key("0000"), rid(0)) {
		t.Error("double delete should report false")
	}
	if tr.Delete(key("zzzz"), rid(0)) {
		t.Error("delete of absent key should report false")
	}
	if tr.Len() != 500 {
		t.Fatalf("Len after deletes = %d, want 500", tr.Len())
	}
	got := collect(tr, nil, nil, true, true)
	if len(got) != 500 {
		t.Fatalf("scan after deletes saw %d", len(got))
	}
	for _, e := range got {
		var i int
		fmt.Sscanf(string(e.Key), "%d", &i)
		if i%2 == 0 {
			t.Fatalf("deleted key %q still visible", e.Key)
		}
	}
}

func TestMin(t *testing.T) {
	tr := New(8)
	if _, ok := tr.Min(); ok {
		t.Error("Min of empty tree should report false")
	}
	tr.Insert(key("m"), rid(1))
	tr.Insert(key("a"), rid(2))
	tr.Insert(key("z"), rid(3))
	e, ok := tr.Min()
	if !ok || string(e.Key) != "a" {
		t.Errorf("Min = %q, %v", e.Key, ok)
	}
	// Min must skip emptied leaves.
	tr2 := New(4)
	for i := 0; i < 20; i++ {
		tr2.Insert(key(fmt.Sprintf("%02d", i)), rid(i))
	}
	for i := 0; i < 10; i++ {
		tr2.Delete(key(fmt.Sprintf("%02d", i)), rid(i))
	}
	e2, ok := tr2.Min()
	if !ok || string(e2.Key) != "10" {
		t.Errorf("Min after deletes = %q, %v; want 10", e2.Key, ok)
	}
}

// TestRandomizedAgainstModel drives the tree and a sorted-slice model with
// the same random operations and compares range scans.
func TestRandomizedAgainstModel(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr := New(5)
	var model []Entry
	modelInsert := func(e Entry) {
		i := sort.Search(len(model), func(i int) bool { return compareEntries(model[i], e) >= 0 })
		if i < len(model) && compareEntries(model[i], e) == 0 {
			return
		}
		model = append(model, Entry{})
		copy(model[i+1:], model[i:])
		model[i] = e
	}
	modelDelete := func(e Entry) bool {
		i := sort.Search(len(model), func(i int) bool { return compareEntries(model[i], e) >= 0 })
		if i < len(model) && compareEntries(model[i], e) == 0 {
			model = append(model[:i], model[i+1:]...)
			return true
		}
		return false
	}
	randKey := func() []byte { return key(fmt.Sprintf("%03d", r.Intn(50))) } // few keys -> many dups
	for op := 0; op < 20000; op++ {
		switch r.Intn(10) {
		case 0, 1: // delete
			e := Entry{Key: randKey(), RID: rid(r.Intn(200))}
			got := tr.Delete(e.Key, e.RID)
			want := modelDelete(e)
			if got != want {
				t.Fatalf("op %d: Delete(%q,%v) = %v, model %v", op, e.Key, e.RID, got, want)
			}
		case 2: // range check
			lo, hi := randKey(), randKey()
			if bytes.Compare(lo, hi) > 0 {
				lo, hi = hi, lo
			}
			got := collect(tr, lo, hi, true, true)
			var want []Entry
			for _, e := range model {
				if bytes.Compare(e.Key, lo) >= 0 && bytes.Compare(e.Key, hi) <= 0 {
					want = append(want, e)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("op %d: range [%q,%q] got %d entries, want %d", op, lo, hi, len(got), len(want))
			}
			for i := range got {
				if compareEntries(got[i], want[i]) != 0 {
					t.Fatalf("op %d: range mismatch at %d", op, i)
				}
			}
		default: // insert
			e := Entry{Key: randKey(), RID: rid(r.Intn(200))}
			tr.Insert(e.Key, e.RID)
			modelInsert(e)
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len = %d, model %d", op, tr.Len(), len(model))
		}
	}
}

func TestQuickSortedIteration(t *testing.T) {
	f := func(keys []uint16) bool {
		tr := New(7)
		for i, k := range keys {
			tr.Insert([]byte(fmt.Sprintf("%05d", k)), rid(i))
		}
		prev := Entry{}
		first := true
		ok := true
		tr.AscendRange(nil, nil, true, true, func(e Entry) bool {
			if !first && compareEntries(prev, e) >= 0 {
				ok = false
				return false
			}
			prev, first = e, false
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLowDegreeClamped(t *testing.T) {
	tr := New(1)
	for i := 0; i < 100; i++ {
		tr.Insert(key(fmt.Sprintf("%03d", i)), rid(i))
	}
	if got := len(collect(tr, nil, nil, true, true)); got != 100 {
		t.Errorf("clamped-degree tree lost entries: %d", got)
	}
}

func TestAscendRangeErrStopsAndPropagates(t *testing.T) {
	tr := New(8)
	for i := 0; i < 100; i++ {
		tr.Insert(key(fmt.Sprintf("k%03d", i)), rid(i))
	}
	boom := fmt.Errorf("boom")
	visited := 0
	err := tr.AscendRangeErr(nil, nil, true, true, func(Entry) error {
		visited++
		if visited == 7 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if visited != 7 {
		t.Fatalf("visited %d entries after error, want 7", visited)
	}
	visited = 0
	if err := tr.AscendRangeErr(key("k010"), key("k019"), true, true, func(Entry) error {
		visited++
		return nil
	}); err != nil {
		t.Fatalf("clean range returned %v", err)
	}
	if visited != 10 {
		t.Fatalf("range visited %d, want 10", visited)
	}
}
