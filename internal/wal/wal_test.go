package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"minequery/internal/fault"
	"minequery/internal/storage"
)

func dmlRec(table string, muts ...Mutation) Record {
	return Record{Kind: RecordDML, Table: table, Muts: muts}
}

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		dmlRec("customers",
			Mutation{Op: OpInsert, Rec: []byte{1, 2, 3}},
			Mutation{Op: OpDelete, RID: storage.RID{Page: 7, Slot: 3}},
			Mutation{Op: OpUpdate, RID: storage.RID{Page: 1, Slot: 9}, Rec: []byte{9}},
		),
		{Kind: RecordDDL, DDL: "CREATE MODEL m ON customers PREDICT seg USING dtree"},
		dmlRec("t2", Mutation{Op: OpInsert, Rec: nil}),
	}
	dev := NewMemDevice()
	l, rep, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 0 || rep.Truncated {
		t.Fatalf("fresh log replay = %+v", rep)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	_, rep, err = Open(NewMemDeviceFrom(mustContents(t, dev)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != len(recs) || rep.Truncated {
		t.Fatalf("replay frames = %d truncated=%v, want %d", rep.Frames, rep.Truncated, len(recs))
	}
	for i, got := range rep.Records {
		want := recs[i]
		if want.Kind == RecordDML {
			// Empty Rec encodes/decodes as nil; normalize.
			for j := range want.Muts {
				if len(want.Muts[j].Rec) == 0 {
					want.Muts[j].Rec = nil
				}
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
}

func mustContents(t *testing.T, d Device) []byte {
	t.Helper()
	b, err := d.Contents()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTornTailDropped(t *testing.T) {
	dev := NewMemDevice()
	l, _, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(dmlRec("t", Mutation{Op: OpInsert, Rec: []byte{1}})); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(dmlRec("t", Mutation{Op: OpInsert, Rec: []byte{2}})); err != nil {
		t.Fatal(err)
	}
	full := mustContents(t, dev)
	// Every strict prefix that cuts into the second frame must recover
	// exactly one record; cutting into the first recovers zero.
	frame1 := len(encodeFrame(dmlRec("t", Mutation{Op: OpInsert, Rec: []byte{1}})))
	for cut := 0; cut < len(full); cut++ {
		_, rep, err := Open(NewMemDeviceFrom(full[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		wantFrames := 0
		if cut >= frame1 {
			wantFrames = 1
		}
		if rep.Frames != wantFrames {
			t.Fatalf("cut=%d frames=%d want %d", cut, rep.Frames, wantFrames)
		}
		if cut > rep.Bytes && !rep.Truncated {
			t.Fatalf("cut=%d: torn tail not reported", cut)
		}
	}
	// Corrupt a payload byte of the last frame: CRC must reject it.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xff
	_, rep, err := Open(NewMemDeviceFrom(bad))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 1 || !rep.Truncated {
		t.Fatalf("corrupt tail: frames=%d truncated=%v", rep.Frames, rep.Truncated)
	}
}

func TestInjectedCrashBreaksLog(t *testing.T) {
	dev := NewMemDevice()
	l, _, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(1, fault.Rule{Site: fault.SiteWALSync, OnHit: 2, Err: ErrCrash})
	l.SetFaults(inj)
	if err := l.Append(dmlRec("t", Mutation{Op: OpInsert, Rec: []byte{1}})); err != nil {
		t.Fatal(err)
	}
	err = l.Append(dmlRec("t", Mutation{Op: OpInsert, Rec: []byte{2}}))
	if !errors.Is(err, ErrCrash) {
		t.Fatalf("want ErrCrash, got %v", err)
	}
	// Sticky: a later append fails without touching the device.
	if err := l.Append(dmlRec("t", Mutation{Op: OpInsert, Rec: []byte{3}})); !errors.Is(err, ErrCrash) {
		t.Fatalf("log not sticky-broken: %v", err)
	}
	if got := l.Err(); !errors.Is(got, ErrCrash) {
		t.Fatalf("Err() = %v", got)
	}
	// The crashed frame was written but never synced: the durable image
	// holds only frame 1, and the crash image with the full pending
	// tail holds both.
	_, rep, err := Open(NewMemDeviceFrom(dev.CrashImage(0)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 1 {
		t.Fatalf("durable frames = %d, want 1", rep.Frames)
	}
	_, rep, err = Open(NewMemDeviceFrom(dev.CrashImage(dev.PendingLen())))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 2 {
		t.Fatalf("full crash image frames = %d, want 2", rep.Frames)
	}
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	l, rep, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 0 {
		t.Fatalf("fresh file frames = %d", rep.Frames)
	}
	if err := l.Append(dmlRec("t", Mutation{Op: OpInsert, Rec: []byte{42}})); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	dev2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	_, rep, err = Open(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 1 || rep.Truncated {
		t.Fatalf("reopen frames=%d truncated=%v", rep.Frames, rep.Truncated)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("stat: %v size=%d", err, fi.Size())
	}
}
