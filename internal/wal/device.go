// Package wal is the write-ahead log backing the engine's DML path.
//
// The log is a flat byte stream of self-describing frames appended in
// commit order. Durability is factored behind the Device interface so
// tests can model crashes at exact fsync/append boundaries: MemDevice
// keeps a "durable" image (everything before the last successful Sync)
// separate from a "pending" tail, and can hand back crash images with
// any prefix of the pending bytes — including torn frames. FileDevice
// is the production implementation over an append-only file.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrDeviceFailed is returned by a device after it has been failed
// (explicitly by a test, or permanently by an I/O error). Once a device
// fails, the Log on top of it goes sticky-broken: every later append
// reports the original failure rather than silently diverging the log
// from the live state.
var ErrDeviceFailed = errors.New("wal: device failed")

// Device is the durability boundary under the log. Write appends bytes
// to the tail (buffered — not durable until Sync returns nil). Contents
// returns the current durable image, read once at Open for replay.
// Truncate discards everything past the first n bytes — Open uses it to
// cut a torn/corrupt tail so later appends land at the end of the valid
// prefix, never after garbage that would stop the next replay early.
type Device interface {
	Contents() ([]byte, error)
	Write(p []byte) error
	Sync() error
	Truncate(n int) error
}

// MemDevice is the in-memory Device used by tests and embedded engines.
// It models the kernel page cache: Write lands in pending, Sync moves
// pending into durable. CrashImage exposes what a real disk could hold
// after a crash — the durable bytes plus an arbitrary prefix of the
// un-synced tail (the torn-write model).
type MemDevice struct {
	mu      sync.Mutex
	durable []byte
	pending []byte
	failed  bool
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// NewMemDeviceFrom returns a device whose durable image is a copy of b
// — the "disk after reboot" for recovery tests.
func NewMemDeviceFrom(b []byte) *MemDevice {
	return &MemDevice{durable: append([]byte(nil), b...)}
}

// Contents returns a copy of the durable image plus any pending bytes.
// On a live (un-crashed) device the pending tail is still readable,
// exactly as an OS page cache serves un-synced file bytes.
func (d *MemDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return nil, ErrDeviceFailed
	}
	out := make([]byte, 0, len(d.durable)+len(d.pending))
	out = append(out, d.durable...)
	return append(out, d.pending...), nil
}

// Write appends p to the pending (un-synced) tail.
func (d *MemDevice) Write(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	d.pending = append(d.pending, p...)
	return nil
}

// Sync makes all pending bytes durable.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	d.durable = append(d.durable, d.pending...)
	d.pending = d.pending[:0]
	return nil
}

// Truncate cuts the device's contents (durable image plus pending
// tail, as Contents serves them) to the first n bytes.
func (d *MemDevice) Truncate(n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return ErrDeviceFailed
	}
	if n < 0 {
		n = 0
	}
	if n <= len(d.durable) {
		d.durable = d.durable[:n]
		d.pending = d.pending[:0]
		return nil
	}
	if k := n - len(d.durable); k < len(d.pending) {
		d.pending = d.pending[:k]
	}
	return nil
}

// Fail marks the device failed; every later operation returns
// ErrDeviceFailed. Used by crash tests to stop the doomed process's
// device from accepting writes after the injected kill.
func (d *MemDevice) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// PendingLen reports how many un-synced bytes the device holds.
func (d *MemDevice) PendingLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pending)
}

// CrashImage returns the bytes a disk could plausibly hold after a
// crash: the durable image plus the first keep bytes of the pending
// tail (clamped to [0, len(pending)]). keep < len(pending) models a
// torn final write; recovery must drop the incomplete frame.
func (d *MemDevice) CrashImage(keep int) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	if keep < 0 {
		keep = 0
	}
	if keep > len(d.pending) {
		keep = len(d.pending)
	}
	out := make([]byte, 0, len(d.durable)+keep)
	out = append(out, d.durable...)
	return append(out, d.pending[:keep]...)
}

// FileDevice is the production Device: an append-only file whose Sync
// is fsync. Open with OpenFileDevice; Close releases the handle.
type FileDevice struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFileDevice opens (creating if absent) the log file at path for
// appending.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &FileDevice{f: f}, nil
}

// Contents reads the whole file — the durable image at open time.
func (d *FileDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	b, err := io.ReadAll(d.f)
	if err != nil {
		return nil, fmt.Errorf("wal: read: %w", err)
	}
	if _, err := d.f.Seek(0, io.SeekEnd); err != nil {
		return nil, fmt.Errorf("wal: seek end: %w", err)
	}
	return b, nil
}

// Write appends to the file.
func (d *FileDevice) Write(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, err := d.f.Write(p); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	return nil
}

// Sync fsyncs the file.
func (d *FileDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// Truncate cuts the file to n bytes and repositions the write offset
// at the new end. The shrink becomes durable with the next Sync — the
// same fsync that makes the first post-recovery commit durable.
func (d *FileDevice) Truncate(n int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Truncate(int64(n)); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if _, err := d.f.Seek(int64(n), io.SeekStart); err != nil {
		return fmt.Errorf("wal: seek after truncate: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.f.Close()
}
