package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"minequery/internal/fault"
	"minequery/internal/storage"
)

// ErrCrash is the error tests arm on the WAL fault sites to model a
// process kill at a durability boundary. It is deliberately NOT
// transient: a crashed writer does not retry, it reboots and replays.
var ErrCrash = errors.New("wal: simulated crash")

// MutOp tags one logged mutation.
type MutOp byte

const (
	// OpInsert appends a row; Rec holds the encoded tuple.
	OpInsert MutOp = 1
	// OpDelete removes the row at RID.
	OpDelete MutOp = 2
	// OpUpdate deletes the row at RID and appends Rec as a new row
	// (the engine's update-moves-to-end semantics, which makes replay
	// RID assignment deterministic).
	OpUpdate MutOp = 3
)

// Mutation is one logged row change.
type Mutation struct {
	Op  MutOp
	RID storage.RID // delete/update target; unused for insert
	Rec []byte      // value.EncodeTuple bytes; unused for delete
}

// Record is one logged commit: either a batch of row mutations against
// Table (Kind == RecordDML) or a DDL statement re-executed verbatim on
// replay (Kind == RecordDDL).
type Record struct {
	Kind  RecordKind
	Table string
	Muts  []Mutation
	DDL   string
}

// RecordKind discriminates frame payloads.
type RecordKind byte

const (
	// RecordDML frames carry a table name plus row mutations.
	RecordDML RecordKind = 1
	// RecordDDL frames carry a statement (today: CREATE MODEL) that is
	// re-executed through the engine on replay.
	RecordDDL RecordKind = 2
)

// Replay is what Open recovered from the device.
type Replay struct {
	Records []Record
	// Frames is the number of intact frames replayed.
	Frames int
	// Truncated reports that the log ended in a torn or corrupt frame
	// (dropped, along with anything after it — crash-tail semantics).
	Truncated bool
	// Bytes is the length of the valid prefix.
	Bytes int
}

// Log is an append-only frame log over a Device. Appends follow the
// commit protocol: encode → write → fsync, with fault sites before the
// write (SiteWALAppend) and before the fsync (SiteWALSync). Any device
// or injected failure leaves the log sticky-broken: no further appends
// are accepted, so the durable log can differ from an engine that
// stopped applying by at most the one in-flight commit.
type Log struct {
	mu     sync.Mutex
	dev    Device
	broken error
	faults atomic.Pointer[fault.Injector]
}

// Open reads the device's durable contents, decodes the valid frame
// prefix, and returns a log positioned to append after it. Torn or
// CRC-corrupt tails are dropped, not errors: they are the expected
// residue of a crash mid-write — the device is truncated to the valid
// prefix so the next append lands where the garbage began. Without the
// truncation, post-recovery commits would sit after undecodable bytes
// and the NEXT replay would stop at the garbage, silently discarding
// every commit acked since — durable writes lost on the second crash.
func Open(dev Device) (*Log, *Replay, error) {
	raw, err := dev.Contents()
	if err != nil {
		return nil, nil, fmt.Errorf("wal: read log: %w", err)
	}
	rep := &Replay{}
	off := 0
	for {
		rec, n, ok := decodeFrame(raw[off:])
		if !ok {
			rep.Truncated = off < len(raw)
			break
		}
		rep.Records = append(rep.Records, rec)
		rep.Frames++
		off += n
	}
	rep.Bytes = off
	if rep.Truncated {
		if err := dev.Truncate(off); err != nil {
			return nil, nil, fmt.Errorf("wal: drop torn tail: %w", err)
		}
	}
	return &Log{dev: dev}, rep, nil
}

// SetFaults installs (or clears, with nil) the injector consulted at
// the append and sync sites.
func (l *Log) SetFaults(in *fault.Injector) { l.faults.Store(in) }

// Err reports the sticky failure that broke the log, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Append encodes rec as one frame, writes it, and fsyncs. It returns
// only after the frame is durable; the caller applies the mutations to
// live state afterwards (log-then-apply), so every synced log prefix
// corresponds exactly to an acked engine state.
func (l *Log) Append(rec Record) error {
	frame := encodeFrame(rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("wal: log broken by earlier failure: %w", l.broken)
	}
	if in := l.faults.Load(); in != nil {
		if err := in.Hit(fault.SiteWALAppend); err != nil {
			l.broken = err
			return err
		}
	}
	if err := l.dev.Write(frame); err != nil {
		l.broken = err
		return err
	}
	if in := l.faults.Load(); in != nil {
		if err := in.Hit(fault.SiteWALSync); err != nil {
			l.broken = err
			return err
		}
	}
	if err := l.dev.Sync(); err != nil {
		l.broken = err
		return err
	}
	return nil
}

// ---- frame codec ----
//
// frame   := len u32le | crc u32le | payload   (crc is IEEE over payload)
// payload := kind byte | body
// DML body := uvarint len(table) | table
//             | uvarint nMuts | mut*
// mut     := op byte
//            | insert: uvarint len(rec) | rec
//            | delete: page u32le | slot u16le
//            | update: page u32le | slot u16le | uvarint len(rec) | rec
// DDL body := statement text (rest of payload)

const frameHeader = 8

func encodeFrame(rec Record) []byte {
	payload := []byte{byte(rec.Kind)}
	switch rec.Kind {
	case RecordDDL:
		payload = append(payload, rec.DDL...)
	case RecordDML:
		payload = binary.AppendUvarint(payload, uint64(len(rec.Table)))
		payload = append(payload, rec.Table...)
		payload = binary.AppendUvarint(payload, uint64(len(rec.Muts)))
		for _, m := range rec.Muts {
			payload = append(payload, byte(m.Op))
			switch m.Op {
			case OpInsert:
				payload = binary.AppendUvarint(payload, uint64(len(m.Rec)))
				payload = append(payload, m.Rec...)
			case OpDelete:
				payload = appendRID(payload, m.RID)
			case OpUpdate:
				payload = appendRID(payload, m.RID)
				payload = binary.AppendUvarint(payload, uint64(len(m.Rec)))
				payload = append(payload, m.Rec...)
			}
		}
	}
	frame := make([]byte, frameHeader, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	return append(frame, payload...)
}

func appendRID(b []byte, rid storage.RID) []byte {
	b = binary.LittleEndian.AppendUint32(b, rid.Page)
	return binary.LittleEndian.AppendUint16(b, rid.Slot)
}

// decodeFrame parses one frame from the front of b. ok is false when b
// holds no complete, checksum-valid frame (torn tail or corruption).
func decodeFrame(b []byte) (Record, int, bool) {
	if len(b) < frameHeader {
		return Record{}, 0, false
	}
	plen := int(binary.LittleEndian.Uint32(b[0:4]))
	crc := binary.LittleEndian.Uint32(b[4:8])
	if plen < 1 || len(b) < frameHeader+plen {
		return Record{}, 0, false
	}
	payload := b[frameHeader : frameHeader+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0, false
	}
	rec, ok := decodePayload(payload)
	if !ok {
		return Record{}, 0, false
	}
	return rec, frameHeader + plen, true
}

func decodePayload(p []byte) (Record, bool) {
	kind := RecordKind(p[0])
	body := p[1:]
	switch kind {
	case RecordDDL:
		return Record{Kind: RecordDDL, DDL: string(body)}, true
	case RecordDML:
		rec := Record{Kind: RecordDML}
		tlen, n := binary.Uvarint(body)
		if n <= 0 || uint64(len(body)-n) < tlen {
			return Record{}, false
		}
		body = body[n:]
		rec.Table = string(body[:tlen])
		body = body[tlen:]
		nm, n := binary.Uvarint(body)
		if n <= 0 {
			return Record{}, false
		}
		body = body[n:]
		for i := uint64(0); i < nm; i++ {
			if len(body) < 1 {
				return Record{}, false
			}
			m := Mutation{Op: MutOp(body[0])}
			body = body[1:]
			var ok bool
			switch m.Op {
			case OpInsert:
				if m.Rec, body, ok = takeBytes(body); !ok {
					return Record{}, false
				}
			case OpDelete:
				if m.RID, body, ok = takeRID(body); !ok {
					return Record{}, false
				}
			case OpUpdate:
				if m.RID, body, ok = takeRID(body); !ok {
					return Record{}, false
				}
				if m.Rec, body, ok = takeBytes(body); !ok {
					return Record{}, false
				}
			default:
				return Record{}, false
			}
			rec.Muts = append(rec.Muts, m)
		}
		if len(body) != 0 {
			return Record{}, false
		}
		return rec, true
	}
	return Record{}, false
}

func takeBytes(b []byte) ([]byte, []byte, bool) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return nil, nil, false
	}
	out := append([]byte(nil), b[n:n+int(l)]...)
	return out, b[n+int(l):], true
}

func takeRID(b []byte) (storage.RID, []byte, bool) {
	if len(b) < 6 {
		return storage.RID{}, nil, false
	}
	rid := storage.RID{
		Page: binary.LittleEndian.Uint32(b[0:4]),
		Slot: binary.LittleEndian.Uint16(b[4:6]),
	}
	return rid, b[6:], true
}
