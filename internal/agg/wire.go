// Wire form of a partial aggregate state: what a shard returns from a
// partial-aggregate execution and what the coordinator merges. Encoding
// is exact — floats travel as decimal-rendered IEEE-754 bit patterns
// and big.Int numerators as decimal strings — so a scatter-gathered
// aggregate finalizes byte-identically to the single-node run.
package agg

import (
	"fmt"
	"math"
	"math/big"
	"sort"
	"strconv"

	"minequery/internal/value"
)

// Wire is the JSON-serializable partial aggregate state.
type Wire struct {
	Groups []WireGroup `json:"groups"`
}

// WireGroup is one group key with its accumulators.
type WireGroup struct {
	Key  []WireValue `json:"key,omitempty"`
	Accs []WireAcc   `json:"accs"`
}

// WireValue carries one value exactly. K is the kind tag: "n" (null),
// "i" (int, decimal), "f" (float, decimal uint64 of its IEEE bits),
// "s" (string, raw), "b" (bool, "t"/"f").
type WireValue struct {
	K string `json:"k"`
	V string `json:"v,omitempty"`
}

// WireAcc is one accumulator. Zero-valued fields are omitted.
type WireAcc struct {
	N    int64      `json:"n,omitempty"`
	ISum int64      `json:"is,omitempty"`
	Num  string     `json:"num,omitempty"`
	NaN  bool       `json:"nan,omitempty"`
	PInf bool       `json:"pinf,omitempty"`
	NInf bool       `json:"ninf,omitempty"`
	MV   *WireValue `json:"mv,omitempty"`
}

func encodeWireValue(v value.Value) WireValue {
	switch v.Kind() {
	case value.KindNull:
		return WireValue{K: "n"}
	case value.KindInt:
		return WireValue{K: "i", V: strconv.FormatInt(v.AsInt(), 10)}
	case value.KindFloat:
		return WireValue{K: "f", V: strconv.FormatUint(math.Float64bits(v.AsFloat()), 10)}
	case value.KindBool:
		if v.AsBool() {
			return WireValue{K: "b", V: "t"}
		}
		return WireValue{K: "b", V: "f"}
	default:
		return WireValue{K: "s", V: v.AsString()}
	}
}

func decodeWireValue(w WireValue) (value.Value, error) {
	switch w.K {
	case "n":
		return value.Null(), nil
	case "i":
		i, err := strconv.ParseInt(w.V, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("agg: bad wire int %q", w.V)
		}
		return value.Int(i), nil
	case "f":
		bits, err := strconv.ParseUint(w.V, 10, 64)
		if err != nil {
			return value.Value{}, fmt.Errorf("agg: bad wire float %q", w.V)
		}
		return value.Float(math.Float64frombits(bits)), nil
	case "b":
		return value.Bool(w.V == "t"), nil
	case "s":
		return value.Str(w.V), nil
	}
	return value.Value{}, fmt.Errorf("agg: bad wire value kind %q", w.K)
}

// EncodeWire serializes the state. Groups are emitted in canonical key
// order so the payload itself is deterministic.
func (t *Table) EncodeWire() *Wire {
	keys := make([]string, 0, len(t.groups))
	for k := range t.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := &Wire{Groups: make([]WireGroup, 0, len(keys))}
	for _, k := range keys {
		gr := t.groups[k]
		wg := WireGroup{Accs: make([]WireAcc, len(gr.accs))}
		for _, v := range gr.key {
			wg.Key = append(wg.Key, encodeWireValue(v))
		}
		for i := range gr.accs {
			a := &gr.accs[i]
			wa := WireAcc{N: a.n, ISum: a.isum, NaN: a.anyNaN, PInf: a.posInf, NInf: a.negInf}
			if a.num != nil && a.num.Sign() != 0 {
				wa.Num = a.num.String()
			}
			if a.hasMV {
				mv := encodeWireValue(a.mv)
				wa.MV = &mv
			}
			wg.Accs[i] = wa
		}
		w.Groups = append(w.Groups, wg)
	}
	return w
}

// MergeWire folds a decoded wire state into t. A shape mismatch (wrong
// group-key or accumulator arity for t's spec) is an error: it means
// the shard planned a different aggregation.
func (t *Table) MergeWire(w *Wire) error {
	if w == nil {
		return nil
	}
	t.merges++
	for _, wg := range w.Groups {
		if len(wg.Key) != len(t.Spec.GroupBy) || len(wg.Accs) != len(t.Spec.Items) {
			return fmt.Errorf("agg: wire state shape mismatch (key %d/%d, accs %d/%d)",
				len(wg.Key), len(t.Spec.GroupBy), len(wg.Accs), len(t.Spec.Items))
		}
		key := make([]value.Value, len(wg.Key))
		for i, wv := range wg.Key {
			v, err := decodeWireValue(wv)
			if err != nil {
				return err
			}
			key[i] = v
		}
		gr := t.groupFor(key)
		for i := range wg.Accs {
			wa := &wg.Accs[i]
			dec := acc{n: wa.N, isum: wa.ISum, anyNaN: wa.NaN, posInf: wa.PInf, negInf: wa.NInf}
			if wa.Num != "" {
				n, ok := new(big.Int).SetString(wa.Num, 10)
				if !ok {
					return fmt.Errorf("agg: bad wire numerator %q", wa.Num)
				}
				dec.num = n
			}
			if wa.MV != nil {
				mv, err := decodeWireValue(*wa.MV)
				if err != nil {
					return err
				}
				dec.mv, dec.hasMV = mv, true
			}
			gr.accs[i].merge(&dec, t.Spec.Items[i])
		}
	}
	return nil
}
