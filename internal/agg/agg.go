// Package agg implements hash aggregation as mergeable partial states.
//
// The contract that everything else leans on: a partial state is
// ORDER-INDEPENDENT — accumulating the same multiset of rows in any
// order, split across any number of partial states merged in any order,
// finalizes to byte-identical results. That is what lets morsel
// workers, columnar group workers, partitions, and cluster shards each
// accumulate locally and merge without coordination, while the output
// stays identical to the serial single-threaded run at any DOP.
//
// Order independence is trivial for COUNT (int addition), SUM over INT
// (two's-complement wraparound addition is associative and
// commutative), and MIN/MAX (commutative under value.Compare). SUM and
// AVG over FLOAT would not be order-independent under IEEE addition
// (rounding makes it non-associative), so those accumulate EXACTLY: a
// finite float64 is an integer multiple of 2^-1074, so sums are kept as
// big.Int numerators in units of 2^-1074 and rounded exactly once at
// finalize via big.Rat.Float64 (correctly rounded to nearest). NaN and
// ±Inf are tracked as commutative flags. AVG over INT keeps the exact
// big.Int sum. Every execution path therefore produces the one
// mathematically-exact result rounded once.
package agg

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"

	"minequery/internal/value"
)

// Func identifies an aggregate function. None marks a plain select item
// (a group-by column carried through the aggregation).
type Func uint8

const (
	None Func = iota
	Count
	Sum
	Min
	Max
	Avg
)

func (f Func) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	}
	return "none"
}

// FuncByName maps a (case-insensitive) SQL function name to its Func.
func FuncByName(name string) (Func, bool) {
	switch strings.ToLower(name) {
	case "count":
		return Count, true
	case "sum":
		return Sum, true
	case "min":
		return Min, true
	case "max":
		return Max, true
	case "avg":
		return Avg, true
	}
	return None, false
}

// Item is one select-list entry of an aggregate query: an aggregate
// call over a column (or * for COUNT), or a plain group-by column
// (Func == None).
type Item struct {
	Func Func
	Col  string // input column; empty when Star
	Star bool   // COUNT(*)
}

// Name is the item's canonical output column name.
func (it Item) Name() string {
	if it.Func == None {
		return it.Col
	}
	if it.Star {
		return it.Func.String() + "(*)"
	}
	return it.Func.String() + "(" + it.Col + ")"
}

// ColSpec is one group-by column resolved against an input schema.
type ColSpec struct {
	Name string
	Kind value.Kind
	Ord  int
}

// ItemSpec is one select item resolved against an input schema.
type ItemSpec struct {
	Item
	Ord      int        // input ordinal; -1 for COUNT(*)
	InKind   value.Kind // input column kind; 0 for COUNT(*)
	GroupIdx int        // for None items: index into Spec.GroupBy
}

// OutKind is the finalized output kind of the item.
func (is ItemSpec) OutKind() value.Kind {
	switch is.Func {
	case Count:
		return value.KindInt
	case Sum:
		if is.InKind == value.KindFloat {
			return value.KindFloat
		}
		return value.KindInt
	case Avg:
		return value.KindFloat
	default:
		return is.InKind
	}
}

// Spec is a resolved aggregation: which input ordinals form the group
// key and what each output column computes. The select-list order of
// Items is the output column order.
type Spec struct {
	GroupBy []ColSpec
	Items   []ItemSpec
}

// Resolve binds group-by columns and select items against an input
// schema, validating the shapes the engine supports: SUM/AVG need a
// numeric input, and a plain select item must be one of the group-by
// columns (otherwise its per-group value would be ambiguous).
func Resolve(in *value.Schema, groupBy []string, items []Item) (*Spec, error) {
	s := &Spec{}
	for _, g := range groupBy {
		o := in.Ordinal(g)
		if o < 0 {
			return nil, fmt.Errorf("agg: unknown GROUP BY column %q", g)
		}
		s.GroupBy = append(s.GroupBy, ColSpec{Name: in.Col(o).Name, Kind: in.Col(o).Kind, Ord: o})
	}
	for _, it := range items {
		is := ItemSpec{Item: it, Ord: -1, GroupIdx: -1}
		if !it.Star {
			o := in.Ordinal(it.Col)
			if o < 0 {
				return nil, fmt.Errorf("agg: unknown column %q", it.Col)
			}
			is.Ord, is.InKind = o, in.Col(o).Kind
		}
		switch it.Func {
		case None:
			for gi, g := range s.GroupBy {
				if g.Ord == is.Ord {
					is.GroupIdx = gi
					break
				}
			}
			if is.GroupIdx < 0 {
				return nil, fmt.Errorf("agg: column %q must appear in GROUP BY or inside an aggregate", it.Col)
			}
		case Sum, Avg:
			if is.InKind != value.KindInt && is.InKind != value.KindFloat {
				return nil, fmt.Errorf("agg: %s over non-numeric column %q (%s)", it.Func, it.Col, is.InKind)
			}
		}
		s.Items = append(s.Items, is)
	}
	return s, nil
}

// OutSchema is the schema of finalized rows: one column per select
// item, in select-list order.
func (s *Spec) OutSchema() (*value.Schema, error) {
	cols := make([]value.Column, len(s.Items))
	for i, it := range s.Items {
		cols[i] = value.Column{Name: it.Name(), Kind: it.OutKind()}
	}
	return value.NewSchema(cols...)
}

// acc is one aggregate's accumulator within one group. Only the fields
// the item's function needs are touched.
type acc struct {
	n    int64    // rows accumulated (non-NULL inputs; all rows for COUNT(*))
	isum int64    // SUM over INT: wraparound sum
	num  *big.Int // exact sum: float units of 2^-1074, or AVG(int) exact sum
	// Commutative IEEE special-case flags for float sums.
	anyNaN, posInf, negInf bool

	mv    value.Value // MIN/MAX running extremum
	hasMV bool
}

func (a *acc) addNum(x *big.Int) {
	if a.num == nil {
		a.num = new(big.Int)
	}
	a.num.Add(a.num, x)
}

// addFloat accumulates one finite-or-not float64 exactly.
func (a *acc) addFloat(f float64, scratch *big.Int) {
	switch {
	case math.IsNaN(f):
		a.anyNaN = true
	case math.IsInf(f, 1):
		a.posInf = true
	case math.IsInf(f, -1):
		a.negInf = true
	default:
		a.addNum(floatUnitsInto(scratch, f))
	}
}

// merge folds o into a. o must not be used afterwards (its big.Int may
// be shared).
func (a *acc) merge(o *acc, is ItemSpec) {
	a.n += o.n
	a.isum += o.isum
	if o.num != nil {
		a.addNum(o.num)
	}
	a.anyNaN = a.anyNaN || o.anyNaN
	a.posInf = a.posInf || o.posInf
	a.negInf = a.negInf || o.negInf
	if o.hasMV {
		switch {
		case !a.hasMV:
			a.mv, a.hasMV = o.mv, true
		case is.Func == Min && value.Compare(o.mv, a.mv) < 0:
			a.mv = o.mv
		case is.Func == Max && value.Compare(o.mv, a.mv) > 0:
			a.mv = o.mv
		}
	}
}

// group is one group key's row of accumulators.
type group struct {
	key  []value.Value
	accs []acc
}

// Table is a partial (or, after merging everything, total) aggregate
// state. Not safe for concurrent use: parallel producers each own a
// Table and merge afterwards.
type Table struct {
	Spec *Spec

	groups  map[string]*group
	keyBuf  []byte
	scratch big.Int
	merges  int64
}

// NewTable returns an empty state for the spec.
func NewTable(s *Spec) *Table {
	return &Table{Spec: s, groups: map[string]*group{}}
}

// Groups reports the number of distinct group keys accumulated so far.
func (t *Table) Groups() int { return len(t.groups) }

// Merges reports how many partial-state merges this table absorbed
// (Merge and MergeWire calls).
func (t *Table) Merges() int64 { return t.merges }

func newGroup(s *Spec) *group {
	return &group{key: make([]value.Value, len(s.GroupBy)), accs: make([]acc, len(s.Items))}
}

func (t *Table) groupFor(key []value.Value) *group {
	t.keyBuf = t.keyBuf[:0]
	for _, v := range key {
		t.keyBuf = appendKey(t.keyBuf, v)
	}
	gr, ok := t.groups[string(t.keyBuf)]
	if !ok {
		gr = newGroup(t.Spec)
		for i, v := range key {
			gr.key[i] = canonVal(v)
		}
		t.groups[string(t.keyBuf)] = gr
	}
	return gr
}

// Add accumulates one input tuple (in the spec's input schema).
func (t *Table) Add(tup value.Tuple) {
	t.keyBuf = t.keyBuf[:0]
	for _, g := range t.Spec.GroupBy {
		t.keyBuf = appendKey(t.keyBuf, tup[g.Ord])
	}
	gr, ok := t.groups[string(t.keyBuf)]
	if !ok {
		gr = newGroup(t.Spec)
		for i, g := range t.Spec.GroupBy {
			gr.key[i] = canonVal(tup[g.Ord])
		}
		t.groups[string(t.keyBuf)] = gr
	}
	for i := range t.Spec.Items {
		is := &t.Spec.Items[i]
		a := &gr.accs[i]
		switch is.Func {
		case None:
			// Carried by the group key.
		case Count:
			if is.Star || !tup[is.Ord].IsNull() {
				a.n++
			}
		case Sum, Avg:
			v := tup[is.Ord]
			if v.IsNull() {
				break
			}
			a.n++
			if is.InKind == value.KindInt {
				iv := v.AsInt()
				if is.Func == Sum {
					a.isum += iv
				} else {
					a.addNum(t.scratch.SetInt64(iv))
				}
			} else {
				a.addFloat(v.AsFloat(), &t.scratch)
			}
		case Min:
			v := tup[is.Ord]
			if v.IsNull() {
				break
			}
			if !a.hasMV || value.Compare(v, a.mv) < 0 {
				a.mv, a.hasMV = v, true
			}
		case Max:
			v := tup[is.Ord]
			if v.IsNull() {
				break
			}
			if !a.hasMV || value.Compare(v, a.mv) > 0 {
				a.mv, a.hasMV = v, true
			}
		}
	}
}

// Merge folds o into t. o must not be used afterwards. Merge order does
// not affect the finalized result.
func (t *Table) Merge(o *Table) {
	t.merges++
	for k, og := range o.groups {
		gr, ok := t.groups[k]
		if !ok {
			t.groups[k] = og
			continue
		}
		for i := range gr.accs {
			gr.accs[i].merge(&og.accs[i], t.Spec.Items[i])
		}
	}
}

// Finalize renders the accumulated state as output rows in canonical
// order: group keys ascending by their exact encoded bytes. An
// ungrouped aggregation always emits exactly one row — the aggregate
// identities (COUNT 0, others NULL) when no rows were accumulated.
func (t *Table) Finalize() []value.Tuple {
	if len(t.Spec.GroupBy) == 0 {
		gr, ok := t.groups[""]
		if !ok {
			gr = newGroup(t.Spec)
		}
		return []value.Tuple{t.finalizeGroup(gr)}
	}
	keys := make([]string, 0, len(t.groups))
	for k := range t.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]value.Tuple, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.finalizeGroup(t.groups[k]))
	}
	return out
}

func (t *Table) finalizeGroup(gr *group) value.Tuple {
	row := make(value.Tuple, len(t.Spec.Items))
	for i := range t.Spec.Items {
		is := &t.Spec.Items[i]
		a := &gr.accs[i]
		switch is.Func {
		case None:
			row[i] = gr.key[is.GroupIdx]
		case Count:
			row[i] = value.Int(a.n)
		case Sum:
			switch {
			case a.n == 0:
				row[i] = value.Null()
			case is.InKind == value.KindInt:
				row[i] = value.Int(a.isum)
			default:
				row[i] = value.Float(a.finalizeFloat(1))
			}
		case Avg:
			switch {
			case a.n == 0:
				row[i] = value.Null()
			case is.InKind == value.KindInt:
				f, _ := new(big.Rat).SetFrac(a.numOrZero(), big.NewInt(a.n)).Float64()
				row[i] = value.Float(f)
			default:
				row[i] = value.Float(a.finalizeFloat(a.n))
			}
		case Min, Max:
			if !a.hasMV {
				row[i] = value.Null()
			} else {
				row[i] = a.mv
			}
		}
	}
	return row
}

func (a *acc) numOrZero() *big.Int {
	if a.num == nil {
		return new(big.Int)
	}
	return a.num
}

// finalizeFloat converts the exact 2^-1074-unit numerator (divided by
// div for AVG) to the correctly-rounded nearest float64 — one rounding,
// applied to the exact sum.
func (a *acc) finalizeFloat(div int64) float64 {
	switch {
	case a.anyNaN || (a.posInf && a.negInf):
		return math.NaN()
	case a.posInf:
		return math.Inf(1)
	case a.negInf:
		return math.Inf(-1)
	}
	den := new(big.Int).Lsh(big.NewInt(div), 1074)
	f, _ := new(big.Rat).SetFrac(a.numOrZero(), den).Float64()
	return f
}

// floatUnitsInto writes f's exact value in units of 2^-1074 into dst:
// every finite float64 is an integer multiple of the smallest subnormal.
func floatUnitsInto(dst *big.Int, f float64) *big.Int {
	b := math.Float64bits(f)
	e := int((b >> 52) & 0x7FF)
	m := b & (1<<52 - 1)
	if e == 0 {
		dst.SetUint64(m)
	} else {
		dst.SetUint64(m | 1<<52)
		dst.Lsh(dst, uint(e-1))
	}
	if b>>63 == 1 {
		dst.Neg(dst)
	}
	return dst
}

// canonVal canonicalizes a value for use as a stored group key so that
// values the key encoding identifies also render identically: -0.0
// becomes +0.0 and every NaN bit pattern becomes the canonical NaN.
func canonVal(v value.Value) value.Value {
	if v.Kind() == value.KindFloat {
		f := v.AsFloat()
		if f == 0 {
			return value.Float(0)
		}
		if math.IsNaN(f) {
			return value.Float(math.NaN())
		}
	}
	return v
}

// appendKey appends an exact, kind-tagged, order-preserving encoding of
// v. Unlike value.SortKey it never converts INT to float (so int64s
// beyond 2^53 stay distinct); within one column all values share a
// kind, so byte order of concatenated keys gives a deterministic
// canonical group order.
func appendKey(dst []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(dst, 0x00)
	case value.KindInt:
		dst = append(dst, 0x01)
		return binary.BigEndian.AppendUint64(dst, uint64(v.AsInt())^(1<<63))
	case value.KindFloat:
		f := v.AsFloat()
		if f == 0 {
			f = 0 // collapse -0.0 into +0.0
		}
		if math.IsNaN(f) {
			f = math.NaN() // collapse NaN payloads
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		dst = append(dst, 0x02)
		return binary.BigEndian.AppendUint64(dst, bits)
	case value.KindBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		return append(dst, 0x03, b)
	default:
		dst = append(dst, 0x04)
		s := v.AsString()
		for i := 0; i < len(s); i++ {
			if s[i] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, s[i])
			}
		}
		return append(dst, 0x00, 0x00)
	}
}
