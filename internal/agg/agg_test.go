package agg

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"minequery/internal/value"
)

func testSchema(t *testing.T) *value.Schema {
	t.Helper()
	return value.MustSchema(
		value.Column{Name: "cat", Kind: value.KindString},
		value.Column{Name: "num", Kind: value.KindInt},
		value.Column{Name: "f", Kind: value.KindFloat},
	)
}

func allItems() []Item {
	return []Item{
		{Func: None, Col: "cat"},
		{Func: Count, Star: true},
		{Func: Count, Col: "f"},
		{Func: Sum, Col: "num"},
		{Func: Sum, Col: "f"},
		{Func: Min, Col: "num"},
		{Func: Max, Col: "num"},
		{Func: Avg, Col: "num"},
		{Func: Avg, Col: "f"},
	}
}

// randTuples builds rows with NULLs, negative ints, and adversarial
// floats (tiny, huge, subnormal) that expose rounding-order effects.
func randTuples(r *rand.Rand, n int) []value.Tuple {
	cats := []string{"a", "b", "c", "d"}
	floats := []float64{0.1, -0.1, 1e300, -1e300, 1e-320, 3.14159, 1.0, 1e16, -1e-8}
	out := make([]value.Tuple, n)
	for i := range out {
		cat := value.Str(cats[r.Intn(len(cats))])
		num := value.Int(int64(r.Intn(2000) - 1000))
		f := value.Float(floats[r.Intn(len(floats))] * float64(r.Intn(7)+1))
		if r.Intn(10) == 0 {
			num = value.Null()
		}
		if r.Intn(10) == 0 {
			f = value.Null()
		}
		out[i] = value.Tuple{cat, num, f}
	}
	return out
}

func finalizeRows(t *testing.T, tab *Table) []string {
	t.Helper()
	rows := tab.Finalize()
	out := make([]string, len(rows))
	for i, row := range rows {
		out[i] = row.String()
	}
	return out
}

// TestOrderIndependence is the property everything leans on: any
// sharding of the input into partial states, accumulated in any order
// and merged in any order, finalizes identically to the serial run.
func TestOrderIndependence(t *testing.T) {
	schema := testSchema(t)
	spec, err := Resolve(schema, []string{"cat"}, allItems())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	rows := randTuples(r, 5000)

	serial := NewTable(spec)
	for _, tup := range rows {
		serial.Add(tup)
	}
	want := finalizeRows(t, serial)

	for trial := 0; trial < 20; trial++ {
		parts := make([]*Table, r.Intn(7)+1)
		for i := range parts {
			parts[i] = NewTable(spec)
		}
		perm := r.Perm(len(rows))
		for _, ri := range perm {
			parts[r.Intn(len(parts))].Add(rows[ri])
		}
		merged := NewTable(spec)
		for _, i := range r.Perm(len(parts)) {
			merged.Merge(parts[i])
		}
		got := finalizeRows(t, merged)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: split/merge result differs\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestFloatSumExact pins the exact superaccumulator: a sum that plain
// left-to-right IEEE addition gets wrong must come out correctly
// rounded regardless of order.
func TestFloatSumExact(t *testing.T) {
	schema := value.MustSchema(value.Column{Name: "f", Kind: value.KindFloat})
	spec, err := Resolve(schema, nil, []Item{{Func: Sum, Col: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	// 1e16 + 1 + ... + 1 (100 ones) - 1e16 == 100 exactly; naive
	// float addition in this order loses the ones entirely.
	tab := NewTable(spec)
	tab.Add(value.Tuple{value.Float(1e16)})
	for i := 0; i < 100; i++ {
		tab.Add(value.Tuple{value.Float(1)})
	}
	tab.Add(value.Tuple{value.Float(-1e16)})
	got := tab.Finalize()[0][0].AsFloat()
	if got != 100 {
		t.Fatalf("exact float sum = %v, want 100", got)
	}
}

func TestFloatSpecials(t *testing.T) {
	schema := value.MustSchema(value.Column{Name: "f", Kind: value.KindFloat})
	spec, err := Resolve(schema, nil, []Item{{Func: Sum, Col: "f"}, {Func: Avg, Col: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"posinf", []float64{1, math.Inf(1)}, math.Inf(1)},
		{"neginf", []float64{math.Inf(-1), 5}, math.Inf(-1)},
		{"bothinf", []float64{math.Inf(-1), math.Inf(1)}, math.NaN()},
		{"nan", []float64{1, math.NaN(), 2}, math.NaN()},
	}
	for _, tc := range cases {
		tab := NewTable(spec)
		for _, f := range tc.in {
			tab.Add(value.Tuple{value.Float(f)})
		}
		row := tab.Finalize()[0]
		for i := 0; i < 2; i++ {
			got := row[i].AsFloat()
			if math.IsNaN(tc.want) != math.IsNaN(got) || (!math.IsNaN(tc.want) && got != tc.want) {
				t.Errorf("%s item %d: got %v, want %v", tc.name, i, got, tc.want)
			}
		}
	}
}

func TestNullSemantics(t *testing.T) {
	schema := testSchema(t)
	spec, err := Resolve(schema, nil, allItems()[1:]) // drop the group-by item
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(spec)
	// Zero rows: COUNTs are 0, everything else NULL.
	row := tab.Finalize()[0]
	want := "(0, 0, NULL, NULL, NULL, NULL, NULL, NULL)"
	if row.String() != want {
		t.Fatalf("identity row = %s, want %s", row, want)
	}
	// All-NULL inputs behave the same except COUNT(*).
	tab = NewTable(spec)
	tab.Add(value.Tuple{value.Str("a"), value.Null(), value.Null()})
	tab.Add(value.Tuple{value.Str("b"), value.Null(), value.Null()})
	row = tab.Finalize()[0]
	want = "(2, 0, NULL, NULL, NULL, NULL, NULL, NULL)"
	if row.String() != want {
		t.Fatalf("all-null row = %s, want %s", row, want)
	}
}

func TestIntSumWraparound(t *testing.T) {
	schema := value.MustSchema(value.Column{Name: "n", Kind: value.KindInt})
	spec, err := Resolve(schema, nil, []Item{{Func: Sum, Col: "n"}})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(spec)
	tab.Add(value.Tuple{value.Int(math.MaxInt64)})
	tab.Add(value.Tuple{value.Int(1)})
	if got := tab.Finalize()[0][0].AsInt(); got != math.MinInt64 {
		t.Fatalf("wraparound sum = %d, want MinInt64", got)
	}
}

func TestNullGroupKeysGroupTogether(t *testing.T) {
	schema := testSchema(t)
	spec, err := Resolve(schema, []string{"num"}, []Item{{Func: None, Col: "num"}, {Func: Count, Star: true}})
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(spec)
	tab.Add(value.Tuple{value.Str("a"), value.Null(), value.Float(1)})
	tab.Add(value.Tuple{value.Str("b"), value.Null(), value.Float(2)})
	tab.Add(value.Tuple{value.Str("c"), value.Int(3), value.Float(3)})
	rows := tab.Finalize()
	if len(rows) != 2 {
		t.Fatalf("got %d groups, want 2 (NULL keys must group)", len(rows))
	}
	if rows[0].String() != "(NULL, 2)" {
		t.Fatalf("NULL group first, got %s", rows[0])
	}
}

func TestResolveRejects(t *testing.T) {
	schema := testSchema(t)
	if _, err := Resolve(schema, nil, []Item{{Func: Sum, Col: "cat"}}); err == nil {
		t.Fatal("SUM over TEXT not rejected")
	}
	if _, err := Resolve(schema, []string{"cat"}, []Item{{Func: None, Col: "num"}}); err == nil {
		t.Fatal("plain item outside GROUP BY not rejected")
	}
	if _, err := Resolve(schema, []string{"nope"}, nil); err == nil {
		t.Fatal("unknown group-by column not rejected")
	}
}

// TestWireRoundTrip: encode → JSON → decode → merge must equal a direct
// merge, including exact float payloads and big.Int numerators.
func TestWireRoundTrip(t *testing.T) {
	schema := testSchema(t)
	spec, err := Resolve(schema, []string{"cat"}, allItems())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	rows := randTuples(r, 3000)

	serial := NewTable(spec)
	a, b := NewTable(spec), NewTable(spec)
	for i, tup := range rows {
		serial.Add(tup)
		if i%2 == 0 {
			a.Add(tup)
		} else {
			b.Add(tup)
		}
	}
	want := finalizeRows(t, serial)

	merged := NewTable(spec)
	for _, part := range []*Table{a, b} {
		blob, err := json.Marshal(part.EncodeWire())
		if err != nil {
			t.Fatal(err)
		}
		var w Wire
		if err := json.Unmarshal(blob, &w); err != nil {
			t.Fatal(err)
		}
		if err := merged.MergeWire(&w); err != nil {
			t.Fatal(err)
		}
	}
	if got := finalizeRows(t, merged); !reflect.DeepEqual(got, want) {
		t.Fatalf("wire round-trip differs\n got %v\nwant %v", got, want)
	}
	if merged.Merges() != 2 {
		t.Fatalf("merges = %d, want 2", merged.Merges())
	}
}

func TestOutSchemaOrderAndKinds(t *testing.T) {
	schema := testSchema(t)
	spec, err := Resolve(schema, []string{"cat"}, []Item{
		{Func: Count, Star: true}, {Func: None, Col: "cat"}, {Func: Sum, Col: "f"}, {Func: Avg, Col: "num"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := spec.OutSchema()
	if err != nil {
		t.Fatal(err)
	}
	want := "(count(*) INT, cat TEXT, sum(f) FLOAT, avg(num) FLOAT)"
	if out.String() != want {
		t.Fatalf("out schema %s, want %s", out, want)
	}
}
