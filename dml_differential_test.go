package minequery

// Write-path differential sweep: a seeded generator produces random
// DML statements, each carrying both its SQL text and its effect as a
// pure Go function over an independent in-memory oracle (a plain slice
// of structs — no engine code on the oracle side). After EVERY commit
// the engine's full table contents are dumped at DOP 1 and DOP 4 and
// compared byte-identically (canonical sorted form) against the oracle,
// and the statement's reported rows-affected count is checked against
// the oracle's. The sweep runs over all three storage layouts — row
// heap, columnar sidecar (which every write stales; the scan must fall
// back to the heap, and periodic rebuilds must pick the new data up),
// and a partitioned heap where updates can move rows across partition
// boundaries.
//
// A separate concurrent phase runs writers on disjoint id ranges with
// readers in flight (meaningful under -race): per-range effects are
// order-independent across goroutines, so the final state is still
// exactly predicted by the oracle.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// oRow is the oracle's row representation — deliberately not a Tuple.
type oRow struct {
	id, a, b int64
	label    string
}

func oracleDump(rows []oRow) string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = fmt.Sprintf("%d|%d|%d|%s", r.id, r.a, r.b, r.label)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

func engineDump(t *testing.T, eng *Engine, dop int) string {
	t.Helper()
	res, err := eng.Query(context.Background(), "SELECT id, a, b, label FROM t", WithDOP(dop))
	if err != nil {
		t.Fatalf("dump at DOP %d: %v", dop, err)
	}
	keys := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		keys[i] = fmt.Sprintf("%d|%d|%d|%s",
			row[0].AsInt(), row[1].AsInt(), row[2].AsInt(), row[3].AsString())
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// dmlStmt pairs a statement's SQL with its oracle effect. apply returns
// the new oracle state and the number of affected rows.
type dmlStmt struct {
	sql   string
	apply func([]oRow) ([]oRow, int64)
}

// genDMLStmt draws one random statement whose predicates are confined
// to ids in [lo, hi] — the serial sweep passes the whole id space, the
// concurrent phase passes each writer's disjoint slice. nextID is the
// caller's id allocator cursor.
func genDMLStmt(r *rand.Rand, nextID *int64, lo, hi int64) dmlStmt {
	labels := [...]string{"red", "green", "blue"}
	inRange := func(row oRow) bool { return row.id >= lo && row.id <= hi }
	switch r.Intn(8) {
	case 4: // UPDATE b by a
		x, y := int64(r.Intn(100)), int64(r.Intn(8))
		return dmlStmt{
			sql: fmt.Sprintf("UPDATE t SET b = %d WHERE a = %d AND id >= %d AND id <= %d", x, y, lo, hi),
			apply: func(o []oRow) ([]oRow, int64) {
				var n int64
				for i := range o {
					if inRange(o[i]) && o[i].a == y {
						o[i].b = x
						n++
					}
				}
				return o, n
			},
		}
	case 5: // UPDATE label by b threshold
		lbl, cut := labels[r.Intn(len(labels))], int64(40+r.Intn(60))
		return dmlStmt{
			sql: fmt.Sprintf("UPDATE t SET label = '%s' WHERE b >= %d AND id >= %d AND id <= %d", lbl, cut, lo, hi),
			apply: func(o []oRow) ([]oRow, int64) {
				var n int64
				for i := range o {
					if inRange(o[i]) && o[i].b >= cut {
						o[i].label = lbl
						n++
					}
				}
				return o, n
			},
		}
	case 6: // DELETE by b and a
		cut, y := int64(r.Intn(40)), int64(r.Intn(8))
		return dmlStmt{
			sql: fmt.Sprintf("DELETE FROM t WHERE b < %d AND a = %d AND id >= %d AND id <= %d", cut, y, lo, hi),
			apply: func(o []oRow) ([]oRow, int64) {
				kept := o[:0]
				var n int64
				for _, row := range o {
					if inRange(row) && row.b < cut && row.a == y {
						n++
						continue
					}
					kept = append(kept, row)
				}
				return kept, n
			},
		}
	case 7: // UPDATE the partition column on one row (may cross partitions)
		span := *nextID - lo
		if hi-lo+1 < span {
			span = hi - lo + 1
		}
		if span <= 0 {
			span = 1
		}
		id, na := lo+r.Int63n(span), int64(r.Intn(8))
		return dmlStmt{
			sql: fmt.Sprintf("UPDATE t SET a = %d WHERE id = %d", na, id),
			apply: func(o []oRow) ([]oRow, int64) {
				var n int64
				for i := range o {
					if o[i].id == id {
						o[i].a = na
						n++
					}
				}
				return o, n
			},
		}
	default: // INSERT 1-4 rows
		n := 1 + r.Intn(4)
		rows := make([]oRow, n)
		var b strings.Builder
		b.WriteString("INSERT INTO t (id, a, b, label) VALUES ")
		for i := range rows {
			rows[i] = oRow{id: *nextID, a: int64(r.Intn(8)), b: int64(r.Intn(100)), label: labels[r.Intn(len(labels))]}
			*nextID++
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "(%d, %d, %d, '%s')", rows[i].id, rows[i].a, rows[i].b, rows[i].label)
		}
		return dmlStmt{
			sql: b.String(),
			apply: func(o []oRow) ([]oRow, int64) {
				return append(o, rows...), int64(n)
			},
		}
	}
}

func dmlTestSchema() *Schema {
	return MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindInt},
		Column{Name: "label", Kind: KindString},
	)
}

func TestDMLDifferentialSweep(t *testing.T) {
	steps := 150
	if testing.Short() {
		steps = 40
	}
	layouts := []struct {
		name  string
		setup func(t *testing.T, eng *Engine)
		// rebuild runs every 10 commits (columnar re-packs the sidecar
		// so fresh-sidecar reads over post-write data are covered too).
		rebuild func(t *testing.T, eng *Engine)
	}{
		{
			name: "row",
			setup: func(t *testing.T, eng *Engine) {
				if err := eng.CreateTable("t", dmlTestSchema()); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			name: "columnar",
			setup: func(t *testing.T, eng *Engine) {
				if err := eng.CreateTable("t", dmlTestSchema()); err != nil {
					t.Fatal(err)
				}
				if err := eng.EnableColumnar("t"); err != nil {
					t.Fatal(err)
				}
			},
			rebuild: func(t *testing.T, eng *Engine) {
				if err := eng.EnableColumnar("t"); err != nil {
					t.Fatalf("sidecar rebuild: %v", err)
				}
			},
		},
		{
			name: "partitioned",
			setup: func(t *testing.T, eng *Engine) {
				if err := eng.CreatePartitionedTable("t", dmlTestSchema(), "a",
					[]Value{Int(3), Int(6)}); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, lay := range layouts {
		lay := lay
		t.Run(lay.name, func(t *testing.T) {
			t.Parallel()
			eng := New()
			lay.setup(t, eng)
			r := rand.New(rand.NewSource(int64(20260808)))
			var oracle []oRow
			var nextID int64
			for s := 0; s < steps; s++ {
				st := genDMLStmt(r, &nextID, 0, 1<<40)
				res, err := eng.Exec(context.Background(), st.sql)
				if err != nil {
					t.Fatalf("step %d %q: %v", s, st.sql, err)
				}
				var want int64
				oracle, want = st.apply(oracle)
				if res.RowsAffected != want {
					t.Fatalf("step %d %q: rows affected %d, oracle %d", s, st.sql, res.RowsAffected, want)
				}
				wantDump := oracleDump(oracle)
				for _, dop := range []int{1, 4} {
					if got := engineDump(t, eng, dop); got != wantDump {
						t.Fatalf("step %d %q: state diverged at DOP %d\nengine:\n%s\noracle:\n%s",
							s, st.sql, dop, got, wantDump)
					}
				}
				if lay.rebuild != nil && s%10 == 9 {
					lay.rebuild(t, eng)
					if got := engineDump(t, eng, 1); got != wantDump {
						t.Fatalf("step %d: rebuilt sidecar diverged\nengine:\n%s\noracle:\n%s", s, got, wantDump)
					}
				}
			}
		})
	}
}

// TestDMLConcurrentWriters runs writers on disjoint id ranges with
// readers in flight. Each writer's statements predicate only on its own
// id slice, so per-range effects commute across goroutines and the
// final state is the serial composition of each writer's op list —
// which the oracle computes exactly. Run under -race this is also the
// memory-safety check for writeMu serialization against the read path.
func TestDMLConcurrentWriters(t *testing.T) {
	const writers, opsPerWriter, rangeSize = 4, 120, 1 << 20
	eng := New()
	if err := eng.CreateTable("t", dmlTestSchema()); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	stmts := make([][]dmlStmt, writers)
	var writerWG, readerWG sync.WaitGroup
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		w := w
		lo := int64(w * rangeSize)
		hi := lo + rangeSize - 1
		r := rand.New(rand.NewSource(int64(1000 + w)))
		nextID := lo
		ops := make([]dmlStmt, opsPerWriter)
		for i := range ops {
			ops[i] = genDMLStmt(r, &nextID, lo, hi)
		}
		stmts[w] = ops
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for _, st := range ops {
				if _, err := eng.Exec(ctx, st.sql); err != nil {
					errCh <- fmt.Errorf("writer %d %q: %w", w, st.sql, err)
					return
				}
			}
		}()
	}
	stop := make(chan struct{})
	for rd := 0; rd < 2; rd++ {
		dop := 1 + 3*rd // DOP 1 and DOP 4 readers
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := eng.Query(ctx, "SELECT id, b FROM t WHERE a >= 4", WithDOP(dop)); err != nil {
					errCh <- fmt.Errorf("reader at DOP %d: %w", dop, err)
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	var oracle []oRow
	for w := 0; w < writers; w++ {
		for _, st := range stmts[w] {
			oracle, _ = st.apply(oracle)
		}
	}
	want := oracleDump(oracle)
	for _, dop := range []int{1, 4} {
		if got := engineDump(t, eng, dop); got != want {
			t.Fatalf("concurrent final state diverged at DOP %d\nengine:\n%s\noracle:\n%s", dop, got, want)
		}
	}
}
