package minequery

import "fmt"

// QueryOption adjusts one Query, Prepare, or Execute call. Options are
// the single per-call knob surface: the same set is accepted by
// Engine.Query (all options), Engine.Prepare (plan-shaping options:
// WithForcedPath), and Prepared.Execute (execution options: WithDOP,
// WithAnalyze).
type QueryOption func(*queryConfig) error

// queryConfig is the resolved option set for one call.
type queryConfig struct {
	baseline    bool
	dop         int
	forcedPath  string
	analyze     bool
	noFallback  bool
	partialAggs bool
}

func buildQueryConfig(opts []QueryOption) (queryConfig, error) {
	var qc queryConfig
	for _, o := range opts {
		if err := o(&qc); err != nil {
			return queryConfig{}, err
		}
	}
	return qc, nil
}

// WithBaseline runs the query without envelope optimization: mining
// predicates are evaluated as black-box filters after the prediction
// join, the paper's unoptimized evaluation strategy.
func WithBaseline() QueryOption {
	return func(qc *queryConfig) error {
		qc.baseline = true
		return nil
	}
}

// WithDOP overrides the engine's degree of parallelism for this call
// only (n <= 0 keeps the engine default). Results are identical at any
// DOP; only the scan fan-out changes.
func WithDOP(n int) QueryOption {
	return func(qc *queryConfig) error {
		qc.dop = n
		return nil
	}
}

// WithForcedPath pins the access path, overriding the cost-based
// choice. The only supported forced path is "seqscan" (a filtered
// sequential scan); "" keeps the optimizer's choice.
func WithForcedPath(path string) QueryOption {
	return func(qc *queryConfig) error {
		switch path {
		case "", "seqscan":
			qc.forcedPath = path
			return nil
		default:
			return fmt.Errorf("minequery: unsupported forced path %q (want \"seqscan\" or \"\")", path)
		}
	}
}

// WithNoFallback disables graceful degradation for this call: if the
// optimized index path fails with a transient error that survives the
// retry layer, the error is returned instead of re-running the query on
// the baseline sequential scan. Useful in tests that must observe the
// raw failure, and for callers that prefer fail-fast over a possibly
// much slower degraded execution.
func WithNoFallback() QueryOption {
	return func(qc *queryConfig) error {
		qc.noFallback = true
		return nil
	}
}

// WithPartialAggs runs an aggregate query in partial mode: the engine
// executes everything below the final aggregate — scan, envelope
// filter, prediction joins, residual filter, and the partial
// accumulation — but skips finalization, returning the order-independent
// partial state in Result.PartialAgg (Result.Rows is nil). A
// coordinator merges the wires of several peers with Table.MergeWire
// and finalizes once, which is exactly how the cluster scatter-gathers
// GROUP BY across shards without shipping rows. Non-aggregate queries
// fail with ErrUnsupportedQuery.
func WithPartialAggs() QueryOption {
	return func(qc *queryConfig) error {
		qc.partialAggs = true
		return nil
	}
}

// WithAnalyze enables envelope-pruning attribution for this execution:
// every row a filter rejects is re-checked against the un-augmented
// predicate, splitting rejections into envelope-pruned vs residual.
// The split appears in Result.Analyze (and EXPLAIN ANALYZE output); it
// costs one extra predicate evaluation per rejected row, which is why
// it is opt-in rather than part of the always-on instrumentation.
func WithAnalyze() QueryOption {
	return func(qc *queryConfig) error {
		qc.analyze = true
		return nil
	}
}
