package minequery

// Differential sweep for aggregation: a seeded generator produces
// hundreds of GROUP BY / aggregate SELECTs mixing mining predicates,
// data predicates, grouping on data and predicted columns, and all five
// aggregate functions. Every query is executed as a forced sequential
// scan at DOP 1 (the oracle) and then optimized at DOP 1 and DOP 4 —
// asserting BYTE-IDENTICAL output, not just equal multisets: aggregate
// results are finalized in canonical group order, so any divergence in
// values or order is a soundness bug in the partial-aggregate machinery
// (order-dependent accumulation, a lost merge, an envelope rewrite
// leaking pre-residual rows into an accumulator). A slice of the
// iterations runs under the seek-killing injector with retries off, so
// degraded aggregate executions meet the same oracle. The sweep repeats
// on a columnar-enabled engine (fused vectorized aggregation) and a
// range-partitioned one (per-partition accumulation under pruning).

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genAggQuery builds one random aggregate SELECT: grouping on cat, a
// predicted column, both, or nothing (scalar aggregates), 1-3 aggregate
// calls, 0-2 prediction joins, and a random WHERE over the joined
// models and data columns.
func genAggQuery(r *rand.Rand, all []diffModel) string {
	n := r.Intn(3)
	perm := r.Perm(len(all))
	models := make([]diffModel, 0, n)
	for _, i := range perm[:n] {
		models = append(models, all[i])
	}
	var groupCols []string
	if r.Intn(2) == 0 {
		groupCols = append(groupCols, "cat")
	}
	if len(models) > 0 && r.Intn(2) == 0 {
		m := models[r.Intn(len(models))]
		groupCols = append(groupCols, m.alias+"."+m.predCol)
	}
	aggs := []string{
		"count(*)", "count(num)", "sum(num)", "min(num)", "max(num)",
		"avg(num)", "min(cat)", "max(cat)", "avg(id)", "sum(id)",
	}
	items := append([]string(nil), groupCols...)
	seen := map[string]bool{}
	for i, na := 0, 1+r.Intn(3); i < na; i++ {
		// Repeated items would collide in the output schema (a shape the
		// engine rejects with ErrUnsupportedQuery, covered separately).
		if a := aggs[r.Intn(len(aggs))]; !seen[a] {
			seen[a] = true
			items = append(items, a)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SELECT %s FROM t", strings.Join(items, ", "))
	for _, m := range models {
		fmt.Fprintf(&b, " PREDICTION JOIN %s AS %s ON", m.name, m.alias)
		for i, c := range m.onCols {
			if i > 0 {
				b.WriteString(" AND")
			}
			fmt.Fprintf(&b, " %s.%s = t.%s", m.alias, c, c)
		}
	}
	if r.Intn(4) > 0 { // most queries filtered, some full-table
		b.WriteString(" WHERE ")
		b.WriteString(genPredicate(r, models, 2))
	}
	if len(groupCols) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(groupCols, ", "))
	}
	if r.Intn(8) == 0 {
		fmt.Fprintf(&b, " LIMIT %d", 1+r.Intn(4))
	}
	return b.String()
}

// runAggSweep is the shared sweep body: iterations random aggregate
// queries against eng, every execution byte-compared to the
// forced-seqscan DOP-1 oracle, every 5th iteration under the
// seek-killer with retries off.
func runAggSweep(t *testing.T, eng *Engine, models []diffModel, seed int64, iterations int) (grouped, fallbacks int) {
	t.Helper()
	ctx := context.Background()
	r := rand.New(rand.NewSource(seed))
	seekKiller := NewFaultInjector(seed, FaultRule{Site: FaultSiteIndexSeek, EveryN: 1, Err: ErrInjected})
	noRetry := RetryPolicy{MaxAttempts: 1}

	for i := 0; i < iterations; i++ {
		sql := genAggQuery(r, models)
		faulty := i%5 == 4

		base, err := eng.Query(ctx, sql, WithForcedPath("seqscan"), WithDOP(1))
		if err != nil {
			t.Fatalf("iter %d: oracle failed for %q: %v", i, sql, err)
		}
		want := joinRows(base.Rows)
		if strings.Contains(sql, "GROUP BY") {
			grouped++
		} else if !strings.Contains(sql, "LIMIT") && len(base.Rows) != 1 {
			t.Fatalf("iter %d: ungrouped aggregate %q returned %d rows, want 1", i, sql, len(base.Rows))
		}

		if faulty {
			eng.SetFaults(seekKiller)
			eng.SetRetryPolicy(noRetry)
		}
		for _, dop := range []int{1, 4} {
			res, err := eng.Query(ctx, sql, WithDOP(dop))
			if err != nil {
				t.Fatalf("iter %d (faulty=%v, dop=%d): optimized failed for %q: %v", i, faulty, dop, sql, err)
			}
			if got := joinRows(res.Rows); got != want {
				t.Fatalf("iter %d (faulty=%v, dop=%d, path=%s, storage=%s, fallback=%v): %q diverged from oracle\nseed=%d\n got: %s\nwant: %s",
					i, faulty, dop, res.AccessPath, res.StorageFormat, res.Fallback, sql, seed, got, want)
			}
			if res.Fallback {
				fallbacks++
				if !faulty {
					t.Fatalf("iter %d: fallback without injected faults for %q", i, sql)
				}
			}
		}
		if faulty {
			eng.SetFaults(nil)
			eng.SetRetryPolicy(DefaultRetryPolicy())
		}
	}
	if grouped == 0 {
		t.Fatal("no iteration generated a GROUP BY; generator drifted")
	}
	return grouped, fallbacks
}

func TestDifferentialAggregateQueries(t *testing.T) {
	const seed = 20260808
	iterations := 300
	if testing.Short() {
		iterations = 80
	}
	eng, models := buildDiffEngine(t, seed, 900)
	grouped, fallbacks := runAggSweep(t, eng, models, seed, iterations)
	if fallbacks == 0 {
		t.Fatal("no fault iteration triggered the fallback path; injector wiring drifted")
	}
	t.Logf("%d iterations (%d grouped, %d fallbacks): all aggregates byte-identical to the oracle", iterations, grouped, fallbacks)
}

func TestDifferentialAggregateColumnar(t *testing.T) {
	const seed = 20260809
	iterations := 150
	if testing.Short() {
		iterations = 50
	}
	eng, models := buildDiffEngine(t, seed, 900)
	if err := eng.EnableColumnar("t"); err != nil {
		t.Fatal(err)
	}
	grouped, _ := runAggSweep(t, eng, models, seed, iterations)
	t.Logf("%d columnar iterations (%d grouped): all aggregates byte-identical to the row-path oracle", iterations, grouped)
}

func TestDifferentialAggregatePartitioned(t *testing.T) {
	const seed = 20260810
	iterations := 150
	if testing.Short() {
		iterations = 50
	}
	// Skewed boundaries: tiny edge partitions plus a dominant middle, so
	// pruning and per-partition accumulation both engage.
	eng, models := buildPartDiffEngine(t, seed, 900, []Value{Int(5), Int(30), Int(80), Int(95)})
	grouped, _ := runAggSweep(t, eng, models, seed, iterations)
	t.Logf("%d partitioned iterations (%d grouped): all aggregates byte-identical to the oracle", iterations, grouped)
}
