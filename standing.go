package minequery

// The engine-level standing-query surface: Subscribe registers an
// ordinary SELECT (PREDICTION JOINs and mining predicates included) as
// a standing query; every committed write statement is then classified
// against the whole registered set — compiled into one shared
// structure, see internal/standing — and matches are delivered through
// a bounded queue read by Notifications. The evaluation hook runs on
// the statement write path (Exec) only: bulk Insert/InsertBatch loads
// and WAL replay bypass it, exactly as they bypass the WAL and retrain
// triggers.

import (
	"context"

	"minequery/internal/catalog"
	"minequery/internal/standing"
	"minequery/internal/value"
)

// Standing-query type re-exports.
type (
	// Notification is one delivered standing-query match.
	Notification = standing.Notification
	// StandingStats snapshots the standing-query engine's counters.
	StandingStats = standing.Stats
	// SubscriptionInfo describes one registered standing query.
	SubscriptionInfo = standing.SubscriptionInfo
)

// Subscribe registers sql as a standing query and returns its
// subscription id. The statement must be a SELECT over one table —
// PREDICTION JOINs and mining predicates welcome — without GROUP BY,
// aggregates, or LIMIT. From then on, every row committed by an Exec
// write statement is classified against the query (envelope regions
// first, model calls only for rows the envelopes cannot reject) and
// matches are queued for Notifications.
func (e *Engine) Subscribe(sql string) (int64, error) {
	return e.standing.Subscribe(sql)
}

// Unsubscribe removes a standing query. Pending notifications already
// queued for it are still delivered.
func (e *Engine) Unsubscribe(id int64) error {
	return e.standing.Unsubscribe(id)
}

// Notifications returns up to max pending standing-query matches,
// long-polling until at least one arrives or ctx is done. On
// cancellation or deadline with nothing pending it returns ctx's error;
// max <= 0 means a default batch of 100.
//
// Delivery is at-most-once from a bounded queue: if matches outrun the
// consumer the overflow is dropped and counted (StandingStats.Dropped,
// per-subscription in Subscriptions) rather than ever blocking the
// write path.
func (e *Engine) Notifications(ctx context.Context, max int) ([]Notification, error) {
	return e.standing.Poll(ctx, max)
}

// StandingStats snapshots the standing-query engine's counters.
func (e *Engine) StandingStats() StandingStats { return e.standing.Stats() }

// Subscriptions lists the registered standing queries in registration
// order.
func (e *Engine) Subscriptions() []SubscriptionInfo { return e.standing.Subscriptions() }

// notifyStanding classifies one committed batch of new row images
// against the standing-query set. Caller holds writeMu; rows are the
// post-normalization images just applied to the heap. Replay is
// excluded: recovered writes were already (at best) notified in the
// crashed process, and a standing subscription registered after a
// restart must not see historical rows as fresh matches.
func (e *Engine) notifyStanding(t *catalog.Table, rows []value.Tuple) {
	if e.replaying || len(rows) == 0 || e.standing.Registered() == 0 {
		return
	}
	e.standing.EvalBatch(t.Name, rows, e.cat.Epoch())
}
