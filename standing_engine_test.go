package minequery

// Engine-level standing-query tests: the subscribe → committed write →
// notification round trip through the public Engine surface, a seeded
// differential sweep of random subscription sets against the naive
// per-subscription oracle under concurrent writers and a mid-sweep
// retrain, replay isolation (WAL recovery must not re-notify), and the
// frozen standing metrics series.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"minequery/internal/standing"
)

// drainNotifications empties the engine's delivery queue, polling until
// a short deadline lapses with nothing left. Standing evaluation is
// synchronous with the committing Exec, so once the writers have
// returned the queue is fully populated and the final empty poll only
// costs the short deadline.
func drainNotifications(t *testing.T, eng *Engine) []Notification {
	t.Helper()
	var out []Notification
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		ns, err := eng.Notifications(ctx, 10000)
		cancel()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return out
			}
			t.Fatalf("drain notifications: %v", err)
		}
		out = append(out, ns...)
	}
}

// notificationKey canonicalizes a delivered notification for multiset
// comparison against the oracle (sub id, projected columns, projected
// values — everything but the delivery sequence number).
func notificationKey(subID int64, cols []string, row Tuple) string {
	parts := make([]string, 0, len(row)+2)
	parts = append(parts, fmt.Sprintf("sub=%d", subID), strings.Join(cols, ","))
	for _, v := range row {
		parts = append(parts, fmt.Sprintf("%d:%s", v.Kind(), v.String()))
	}
	return strings.Join(parts, "|")
}

// TestStandingRoundTrip drives the full public path: subscribe, write
// through Exec, receive the matches — including a mining subscription
// whose projection carries the predicted column.
func TestStandingRoundTrip(t *testing.T) {
	eng, _ := buildDiffEngine(t, 4242, 200)
	ctx := context.Background()

	dataID, err := eng.Subscribe("SELECT id, num FROM t WHERE num >= 90")
	if err != nil {
		t.Fatal(err)
	}
	mineID, err := eng.Subscribe(
		"SELECT id, m.cls FROM t PREDICTION JOIN dt AS m ON m.num = t.num WHERE m.cls = 'high'")
	if err != nil {
		t.Fatal(err)
	}
	if got := eng.StandingStats().Registered; got != 2 {
		t.Fatalf("registered = %d, want 2", got)
	}

	// One row above both thresholds, one below: num >= 85 predicts
	// "high" in the buildDiffEngine fixture.
	res, err := eng.Exec(ctx, "INSERT INTO t (id, cat, num) VALUES (9001, 'c1', 97), (9002, 'c2', 10)")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Fatalf("rows affected = %d, want 2", res.RowsAffected)
	}
	ns := drainNotifications(t, eng)
	if len(ns) != 2 {
		t.Fatalf("got %d notifications, want 2: %+v", len(ns), ns)
	}
	bySub := map[int64]Notification{}
	for _, n := range ns {
		bySub[n.SubID] = n
		if n.Table != "t" {
			t.Fatalf("notification table = %q, want t", n.Table)
		}
	}
	d := bySub[dataID]
	if len(d.Row) != 2 || d.Row[0].AsInt() != 9001 || d.Row[1].AsInt() != 97 {
		t.Fatalf("data notification row = %v", d.Row)
	}
	m := bySub[mineID]
	if len(m.Row) != 2 || m.Row[0].AsInt() != 9001 || m.Row[1].AsString() != "high" {
		t.Fatalf("mining notification row = %v", m.Row)
	}

	// Unsubscribed queries stop matching; unknown ids are typed errors.
	if err := eng.Unsubscribe(mineID); err != nil {
		t.Fatal(err)
	}
	if err := eng.Unsubscribe(mineID); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("double unsubscribe: got %v, want ErrUnknownSubscription", err)
	}
	if _, err := eng.Exec(ctx, "INSERT INTO t (id, cat, num) VALUES (9003, 'c3', 99)"); err != nil {
		t.Fatal(err)
	}
	ns = drainNotifications(t, eng)
	if len(ns) != 1 || ns[0].SubID != dataID {
		t.Fatalf("after unsubscribe: got %+v, want one match for sub %d", ns, dataID)
	}
}

// TestStandingDifferentialSweep is the engine-level differential run:
// seeded random subscription sets registered in both the engine and the
// naive oracle, random INSERT batches committed by concurrent writers,
// and every delivered notification compared (as a canonical multiset —
// writer interleaving is the only permitted nondeterminism) against the
// oracle applied to the same rows. A mid-sweep retrain forces shared-set
// recompilation; DOP alternates to interleave standing evaluation with
// parallel reads.
func TestStandingDifferentialSweep(t *testing.T) {
	const seed = 880808
	iterations := 300
	if testing.Short() {
		iterations = 60
	}
	eng, models := buildDiffEngine(t, seed, 300)
	ctx := context.Background()
	r := rand.New(rand.NewSource(seed))

	nextID := int64(100000)
	recompilesBefore := eng.StandingStats().Recompiles
	for iter := 0; iter < iterations; iter++ {
		eng.SetDOP(1 + 3*(iter%2))
		if iter == iterations/2 {
			// Re-train one family in place: epoch bump → standing set
			// recompiles. Same training data, so predictions are unchanged
			// and the oracle (which reads the catalog fresh) stays aligned.
			if _, err := eng.TrainDecisionTree("dt", "cls", "t_lbl", []string{"num"}, "cls", TreeOptions{}); err != nil {
				t.Fatal(err)
			}
		}

		naive := standing.NewNaiveMatcher(eng.cat)
		nSubs := 1 + r.Intn(6)
		subIDs := make([]int64, 0, nSubs)
		for i := 0; i < nSubs; i++ {
			sql := genQuery(r, models)
			id, err := eng.Subscribe(sql)
			if err != nil {
				t.Fatalf("iter %d: subscribe %q: %v", iter, sql, err)
			}
			if err := naive.Register(id, sql); err != nil {
				t.Fatalf("iter %d: naive register %q: %v", iter, sql, err)
			}
			subIDs = append(subIDs, id)
		}

		// Two writers commit disjoint batches concurrently; the oracle is
		// applied to the union of their rows after both land.
		type batch struct {
			sql  string
			rows []Tuple
		}
		batches := make([]batch, 2)
		for w := range batches {
			n := 5 + r.Intn(10)
			var b strings.Builder
			b.WriteString("INSERT INTO t (id, cat, num) VALUES ")
			for i := 0; i < n; i++ {
				nextID++
				c := fmt.Sprintf("c%d", r.Intn(8))
				num := int64(r.Intn(100))
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "(%d, '%s', %d)", nextID, c, num)
				batches[w].rows = append(batches[w].rows, Tuple{Int(nextID), Str(c), Int(num)})
			}
			batches[w].sql = b.String()
		}
		var wg sync.WaitGroup
		for w := range batches {
			wg.Add(1)
			go func(sql string) {
				defer wg.Done()
				if _, err := eng.Exec(ctx, sql); err != nil {
					t.Errorf("iter %d: exec: %v", iter, err)
				}
			}(batches[w].sql)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}

		var want []string
		for _, b := range batches {
			for _, row := range b.rows {
				for _, m := range naive.Matches("t", row) {
					want = append(want, notificationKey(m.SubID, m.Columns, m.Row))
				}
			}
		}
		var got []string
		for _, n := range drainNotifications(t, eng) {
			got = append(got, notificationKey(n.SubID, n.Columns, n.Row))
		}
		sort.Strings(want)
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("iter %d: %d notifications, oracle %d (seed=%d)\ngot:  %v\nwant: %v",
				iter, len(got), len(want), seed, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("iter %d diverges at %d (seed=%d)\n got: %s\nwant: %s",
					iter, i, seed, got[i], want[i])
			}
		}
		for _, id := range subIDs {
			if err := eng.Unsubscribe(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if eng.StandingStats().Recompiles <= recompilesBefore {
		t.Fatal("mid-sweep retrain never forced a shared-set recompile")
	}
	if dropped := eng.StandingStats().Dropped; dropped != 0 {
		t.Fatalf("sweep dropped %d notifications; the drain should have kept the queue empty", dropped)
	}
}

// TestStandingReplayDoesNotNotify pins the replay/live split: WAL
// recovery re-applies committed rows but must not re-deliver them to
// standing queries — notifications are a live-write phenomenon, and
// replaying a log into a warm subscriber set would duplicate every
// match ever made.
func TestStandingReplayDoesNotNotify(t *testing.T) {
	ctx := context.Background()
	eng := newCrashEngine(t, 0)
	dev := NewMemWALDevice()
	if _, err := eng.EnableWAL(dev); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Subscribe("SELECT id FROM t WHERE a >= 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ctx, "INSERT INTO t (id, a, b, label) VALUES (1, 1, 1, 'red'), (2, 2, 2, 'blue')"); err != nil {
		t.Fatal(err)
	}
	if ns := drainNotifications(t, eng); len(ns) != 2 {
		t.Fatalf("live engine delivered %d notifications, want 2", len(ns))
	}

	// Recover the log into a fresh engine that already has a (matching)
	// subscription registered: replay must stay silent.
	rec := newCrashEngine(t, 0)
	if _, err := rec.Subscribe("SELECT id FROM t WHERE a >= 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.EnableWAL(NewMemWALDeviceFrom(dev.CrashImage(0))); err != nil {
		t.Fatal(err)
	}
	n, err := rec.RowCount("t")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replay recovered %d rows, want 2", n)
	}
	st := rec.StandingStats()
	if st.Evals != 0 || st.Matches != 0 {
		t.Fatalf("replay evaluated standing queries: %+v", st)
	}
	if ns := drainNotifications(t, rec); len(ns) != 0 {
		t.Fatalf("replay delivered %d notifications, want 0", len(ns))
	}
}

// TestStandingMetricsSeries pins the frozen standing metric names and
// checks they move with real activity.
func TestStandingMetricsSeries(t *testing.T) {
	eng, _ := buildDiffEngine(t, 77, 100)
	reg := NewMetricsRegistry()
	eng.RegisterMetrics(reg)
	if _, err := eng.Subscribe("SELECT id FROM t WHERE num >= 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(context.Background(), "INSERT INTO t (id, cat, num) VALUES (5001, 'c0', 50)"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	for _, want := range []string{
		"minequery_standing_registered 1",
		"minequery_standing_matches_total 1",
		"minequery_standing_evals_total 1",
		"minequery_standing_dropped_total 0",
		"minequery_standing_recompiles_total",
		"minequery_retrain_failures_total 0",
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("scrape is missing %q:\n%s", want, scrape)
		}
	}
}
