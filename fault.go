// Fault injection and resilience knobs on the public API: re-exports of
// internal/fault so tests and operators can inject deterministic
// storage/executor failures, tune the transient-retry policy, and drive
// backoff with a fake clock — without importing internal packages.
package minequery

import (
	"minequery/internal/fault"
	"minequery/internal/qerr"
	"minequery/internal/wal"
)

// Re-exported fault-injection types. A FaultInjector is seeded and
// deterministic: whether a rule fires on the Nth visit to a site is a
// pure function of (seed, site, N), so a failing chaos run replays
// exactly from its seed, even under the race detector.
type (
	// FaultInjector evaluates injection rules at named sites.
	FaultInjector = fault.Injector
	// FaultRule is one injection rule: at Site, fire OnHit/EveryN/Prob
	// up to Limit times, returning Err and/or sleeping Delay.
	FaultRule = fault.Rule
	// RetryPolicy bounds retries of transient failures with
	// exponential backoff and deterministic jitter.
	RetryPolicy = fault.RetryPolicy
	// Clock abstracts time for retry backoff; see NewFakeClock.
	Clock = fault.Clock
	// FakeClock is a manually advanced Clock for sleep-free tests.
	FakeClock = fault.FakeClock
)

// Fault site names accepted in FaultRule.Site.
const (
	// FaultSitePageReadSeq fires once per heap page during sequential
	// scans, before any record on the page is delivered.
	FaultSitePageReadSeq = fault.SitePageReadSeq
	// FaultSitePageReadRand fires on random (RID) page reads.
	FaultSitePageReadRand = fault.SitePageReadRand
	// FaultSiteIndexSeek fires at the start of each B+-tree range seek.
	FaultSiteIndexSeek = fault.SiteIndexSeek
	// FaultSiteMorselClaim fires when a scan worker claims a morsel.
	FaultSiteMorselClaim = fault.SiteMorselClaim
	// FaultSiteBatch fires at batch boundaries in the scan iterator.
	FaultSiteBatch = fault.SiteBatch
	// FaultSiteAdmission fires in the server's admission path.
	FaultSiteAdmission = fault.SiteAdmission
	// FaultSiteWALAppend fires once per WAL frame append, before the
	// frame bytes reach the device — a crash here loses the statement.
	FaultSiteWALAppend = fault.SiteWALAppend
	// FaultSiteWALSync fires once per WAL fsync, after the frame was
	// written but before it is durable — a crash here may leave a torn
	// frame at the tail of the log.
	FaultSiteWALSync = fault.SiteWALSync
)

// ErrWALCrash is the ready-made non-transient failure for crash tests
// arming the WAL sites: it breaks the log (no retry, no degradation)
// the way a process kill at a durability boundary would.
var ErrWALCrash = wal.ErrCrash

// ErrTransient classifies failures the retry layer may absorb and the
// degradation path may survive; injected faults wrap it, and callers
// can match it with errors.Is on surfaced query errors.
var ErrTransient = qerr.ErrTransient

// ErrInjected is the ready-made transient failure for FaultRule.Err
// (it wraps ErrTransient). A rule whose Err is nil injects only its
// Delay — latency without failure.
var ErrInjected = fault.ErrInjected

// NewFaultInjector builds a deterministic injector from a seed and a
// rule set.
func NewFaultInjector(seed int64, rules ...FaultRule) *FaultInjector {
	return fault.NewInjector(seed, rules...)
}

// DefaultRetryPolicy is the engine's default transient-retry policy:
// 3 attempts, 1ms base backoff doubling to a 50ms cap, 50% jitter.
func DefaultRetryPolicy() RetryPolicy { return fault.DefaultRetryPolicy() }

// NewFakeClock returns a manually advanced clock for timing tests.
func NewFakeClock() *FakeClock { return fault.NewFakeClock() }

// SetFaults installs (or, with nil, removes) a fault injector on the
// engine: the storage layer's page-read sites on every current and
// future table heap, and the executor's seek/morsel/batch sites on
// subsequent query executions. With no injector installed — the
// production state — every site reduces to a nil-pointer check.
//
// Concurrency: installation is atomic per layer, but queries already
// running may observe a mix of old and new injectors across layers;
// install before issuing the queries under test.
func (e *Engine) SetFaults(in *FaultInjector) {
	e.cat.SetFaults(in)
	e.execOpts.Faults = in
	if l := e.wlog.Load(); l != nil {
		l.SetFaults(in)
	}
}

// SetRetryPolicy replaces the transient-retry policy used by subsequent
// query executions. The zero policy disables retrying entirely;
// DefaultRetryPolicy() restores the default. The policy's clock can be
// overridden for tests via SetRetryClock.
func (e *Engine) SetRetryPolicy(p RetryPolicy) { e.execOpts.Retry = p }

// SetRetryClock replaces the clock driving retry backoff sleeps (nil
// restores the wall clock). Tests install a FakeClock so backoff
// schedules are asserted without real sleeping.
func (e *Engine) SetRetryClock(c Clock) { e.execOpts.Clock = c }
