package minequery

// Engine-level aggregation coverage: GROUP BY / aggregate queries
// through the full SQL → rewrite → plan → execute pipeline, checked
// for byte-identical output across DOP, storage format, access path,
// and baseline-vs-optimized execution; the self-describing ColumnMeta
// schema; the ErrUnsupportedQuery surface; partial-aggregate mode; and
// byte-exact EXPLAIN ANALYZE goldens for aggregate plans.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minequery/internal/agg"
)

// joinRows renders a result's rows one per line — aggregate output
// order is canonical (sorted group keys), so two correct executions
// must be byte-identical, not merely equal as multisets.
func joinRows(rows []Tuple) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

func TestAggregateGroupByMatchesHandComputed(t *testing.T) {
	e := seedEngine(t, 20000)
	ctx := context.Background()

	all, err := e.Query(ctx, "SELECT * FROM customers")
	if err != nil {
		t.Fatal(err)
	}
	type accum struct {
		n, sum, min, max int64
	}
	bySeg := map[string]*accum{}
	for _, row := range all.Rows {
		seg, visits := row[4].AsString(), row[3].AsInt()
		a, ok := bySeg[seg]
		if !ok {
			a = &accum{min: visits, max: visits}
			bySeg[seg] = a
		} else {
			if visits < a.min {
				a.min = visits
			}
			if visits > a.max {
				a.max = visits
			}
		}
		a.n++
		a.sum += visits
	}

	res, err := e.Query(ctx,
		"SELECT segment, count(*), sum(visits), min(visits), max(visits), avg(visits) FROM customers GROUP BY segment")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(bySeg) {
		t.Fatalf("groups = %d, want %d", len(res.Rows), len(bySeg))
	}
	for _, row := range res.Rows {
		want := bySeg[row[0].AsString()]
		if want == nil {
			t.Fatalf("unexpected group %s", row[0])
		}
		if row[1].AsInt() != want.n || row[2].AsInt() != want.sum ||
			row[3].AsInt() != want.min || row[4].AsInt() != want.max {
			t.Fatalf("group %s = %s, want n=%d sum=%d min=%d max=%d",
				row[0], row, want.n, want.sum, want.min, want.max)
		}
		wantAvg := float64(want.sum) / float64(want.n)
		if row[5].AsFloat() != wantAvg {
			t.Fatalf("group %s avg = %v, want %v", row[0], row[5], wantAvg)
		}
	}
}

// TestAggregateByteIdentityAcrossConfigs pins the tentpole invariant at
// the public API: one aggregate query finalizes byte-identical rows on
// the row heap and the columnar sidecar, at DOP 1 and 4, optimized and
// baseline, forced-seqscan and cost-chosen path.
func TestAggregateByteIdentityAcrossConfigs(t *testing.T) {
	e := seedEngine(t, 20000)
	trainNB(t, e)
	if err := e.CreateIndex("ix_age_income", "customers", "age", "income"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	queries := []string{
		"SELECT segment, count(*), sum(visits), avg(income) FROM customers WHERE age >= 3 GROUP BY segment",
		"SELECT count(*), min(age), max(age), avg(visits) FROM customers WHERE income <= 5",
		`SELECT m.segment, count(*), avg(visits) FROM customers
			PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
			GROUP BY m.segment`,
		`SELECT segment, m.segment, count(*) FROM customers
			PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
			WHERE m.segment = 'vip' GROUP BY segment, m.segment`,
	}
	for qi, sql := range queries {
		oracle, err := e.Query(ctx, sql, WithForcedPath("seqscan"), WithDOP(1))
		if err != nil {
			t.Fatalf("query %d: oracle: %v", qi, err)
		}
		want := joinRows(oracle.Rows)
		check := func(label string, opts ...QueryOption) {
			t.Helper()
			res, err := e.Query(ctx, sql, opts...)
			if err != nil {
				t.Fatalf("query %d (%s): %v", qi, label, err)
			}
			if got := joinRows(res.Rows); got != want {
				t.Fatalf("query %d (%s, path=%s, storage=%s) diverged\n got: %s\nwant: %s",
					qi, label, res.AccessPath, res.StorageFormat, got, want)
			}
		}
		check("optimized dop1", WithDOP(1))
		check("optimized dop4", WithDOP(4))
		check("baseline dop4", WithBaseline(), WithDOP(4))
		check("forced dop4", WithForcedPath("seqscan"), WithDOP(4))
	}

	// Same sweep on the columnar sidecar (the fused vectorized aggregate
	// path); the row-path oracle above remains the reference.
	if err := e.EnableColumnar("customers"); err != nil {
		t.Fatal(err)
	}
	columnar := 0
	for qi, sql := range queries {
		oracle, err := e.Query(ctx, sql, WithForcedPath("seqscan"), WithDOP(1))
		if err != nil {
			t.Fatalf("query %d: oracle: %v", qi, err)
		}
		want := joinRows(oracle.Rows)
		for _, dop := range []int{1, 4} {
			res, err := e.Query(ctx, sql, WithDOP(dop))
			if err != nil {
				t.Fatalf("query %d (columnar dop%d): %v", qi, dop, err)
			}
			if got := joinRows(res.Rows); got != want {
				t.Fatalf("query %d (columnar dop%d, storage=%s) diverged\n got: %s\nwant: %s",
					qi, dop, res.StorageFormat, got, want)
			}
			if res.StorageFormat == "columnar" {
				columnar++
			}
		}
	}
	if columnar == 0 {
		t.Fatal("no aggregate execution ran on the columnar path; sweep is vacuous")
	}
}

func TestAggregateColumnMeta(t *testing.T) {
	e := seedEngine(t, 2000)
	trainNB(t, e)
	ctx := context.Background()

	res, err := e.Query(ctx, `SELECT m.segment, count(*), avg(visits) FROM customers
		PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
		GROUP BY m.segment`)
	if err != nil {
		t.Fatal(err)
	}
	want := []ColumnMeta{
		{Name: "m.segment", Kind: KindString, Source: SourceProjected},
		{Name: "count(*)", Kind: KindInt, Source: SourceAggregate},
		{Name: "avg(visits)", Kind: KindFloat, Source: SourceAggregate},
	}
	if len(res.Columns) != len(want) {
		t.Fatalf("columns = %v, want %v", res.Columns, want)
	}
	for i, c := range res.Columns {
		if c != want[i] {
			t.Fatalf("column %d = %+v, want %+v", i, c, want[i])
		}
	}
	if got := res.ColumnNames(); strings.Join(got, ",") != "m.segment,count(*),avg(visits)" {
		t.Fatalf("ColumnNames = %v", got)
	}

	// Non-aggregate queries report every column as projected.
	plain, err := e.Query(ctx, "SELECT id, segment FROM customers LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plain.Columns {
		if c.Source != SourceProjected {
			t.Fatalf("non-aggregate column %+v not projected", c)
		}
	}
}

func TestUnsupportedAggregateShapes(t *testing.T) {
	e := seedEngine(t, 500)
	ctx := context.Background()
	cases := []struct {
		name string
		sql  string
	}{
		{"star with group by", "SELECT * FROM customers GROUP BY segment"},
		{"plain column not grouped", "SELECT id, count(*) FROM customers GROUP BY segment"},
		{"sum over text", "SELECT sum(segment) FROM customers"},
		{"avg over text", "SELECT segment, avg(segment) FROM customers GROUP BY segment"},
		{"duplicate select item", "SELECT sum(visits), sum(visits) FROM customers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.Query(ctx, tc.sql); !errors.Is(err, ErrUnsupportedQuery) {
				t.Fatalf("Query err = %v, want ErrUnsupportedQuery", err)
			}
			if _, err := e.Explain(tc.sql); !errors.Is(err, ErrUnsupportedQuery) {
				t.Fatalf("Explain err = %v, want ErrUnsupportedQuery", err)
			}
			if _, err := e.Prepare(tc.sql); !errors.Is(err, ErrUnsupportedQuery) {
				t.Fatalf("Prepare err = %v, want ErrUnsupportedQuery", err)
			}
		})
	}
	// Partial-aggregate mode is itself unsupported for non-aggregate
	// queries.
	if _, err := e.Query(ctx, "SELECT id FROM customers", WithPartialAggs()); !errors.Is(err, ErrUnsupportedQuery) {
		t.Fatalf("partial of non-aggregate err = %v, want ErrUnsupportedQuery", err)
	}
}

// TestWithPartialAggsRoundTrip checks the shard half of scatter-gather
// at the public API: a partial-mode Result carries no rows but a wire
// state that, merged into a fresh table and finalized, reproduces the
// normal execution byte-for-byte. Merging the same wire from two
// "shards" doubles every count, which is exactly the coordinator's
// merge semantics.
func TestWithPartialAggsRoundTrip(t *testing.T) {
	e := seedEngine(t, 8000)
	ctx := context.Background()
	sql := "SELECT segment, count(*), sum(visits), avg(income) FROM customers GROUP BY segment"

	full, err := e.Query(ctx, sql, WithDOP(4))
	if err != nil {
		t.Fatal(err)
	}
	part, err := e.Query(ctx, sql, WithPartialAggs(), WithDOP(4))
	if err != nil {
		t.Fatal(err)
	}
	if part.Rows != nil {
		t.Fatalf("partial result carries %d rows, want none", len(part.Rows))
	}
	if part.PartialAgg == nil {
		t.Fatal("partial result has no wire state")
	}
	// The partial Result still self-describes the finalized output.
	if strings.Join(part.ColumnNames(), ",") != strings.Join(full.ColumnNames(), ",") {
		t.Fatalf("partial columns %v != full columns %v", part.Columns, full.Columns)
	}

	tab := mustAggTable(t, e, "customers", []string{"segment"}, []agg.Item{
		{Func: agg.None, Col: "segment"},
		{Func: agg.Count, Star: true},
		{Func: agg.Sum, Col: "visits"},
		{Func: agg.Avg, Col: "income"},
	})
	if err := tab.MergeWire(part.PartialAgg); err != nil {
		t.Fatal(err)
	}
	if got := joinRows(tab.Finalize()); got != joinRows(full.Rows) {
		t.Fatalf("merged partial diverged from full run\n got: %s\nwant: %s", got, joinRows(full.Rows))
	}

	// Two identical shards: counts and sums double, extrema hold.
	tab2 := mustAggTable(t, e, "customers", []string{"segment"}, []agg.Item{
		{Func: agg.None, Col: "segment"},
		{Func: agg.Count, Star: true},
		{Func: agg.Sum, Col: "visits"},
		{Func: agg.Avg, Col: "income"},
	})
	if err := tab2.MergeWire(part.PartialAgg); err != nil {
		t.Fatal(err)
	}
	if err := tab2.MergeWire(part.PartialAgg); err != nil {
		t.Fatal(err)
	}
	doubled := tab2.Finalize()
	for i, row := range doubled {
		if row[1].AsInt() != 2*full.Rows[i][1].AsInt() || row[2].AsInt() != 2*full.Rows[i][2].AsInt() {
			t.Fatalf("double-merge row %d = %s, want doubled counts of %s", i, row, full.Rows[i])
		}
	}

	// Ungrouped partials round-trip too (identity row on empty input is
	// produced at finalize, not by the shards).
	usql := "SELECT count(*), avg(visits) FROM customers WHERE age >= 9"
	ufull, err := e.Query(ctx, usql)
	if err != nil {
		t.Fatal(err)
	}
	upart, err := e.Query(ctx, usql, WithPartialAggs())
	if err != nil {
		t.Fatal(err)
	}
	utab := mustAggTable(t, e, "customers", nil, []agg.Item{
		{Func: agg.Count, Star: true},
		{Func: agg.Avg, Col: "visits"},
	})
	if err := utab.MergeWire(upart.PartialAgg); err != nil {
		t.Fatal(err)
	}
	if got := joinRows(utab.Finalize()); got != joinRows(ufull.Rows) {
		t.Fatalf("ungrouped merged partial = %s, want %s", got, joinRows(ufull.Rows))
	}
}

// mustAggTable builds an empty partial table for a query shape, resolved
// against the table's schema — the coordinator-side half of the wire
// protocol.
func mustAggTable(t *testing.T, e *Engine, table string, groupBy []string, items []agg.Item) *agg.Table {
	t.Helper()
	tb, ok := e.cat.Table(table)
	if !ok {
		t.Fatalf("no table %s", table)
	}
	spec, err := agg.Resolve(tb.Schema, groupBy, items)
	if err != nil {
		t.Fatal(err)
	}
	return agg.NewTable(spec)
}

// TestAggregateEdgeShapes covers LIMIT over groups, empty grouped
// results, the ungrouped identity row, and the constant-scan path (a
// provably-empty mining predicate never touching the table).
func TestAggregateEdgeShapes(t *testing.T) {
	e := seedEngine(t, 5000)
	trainNB(t, e)
	ctx := context.Background()

	unlimited, err := e.Query(ctx, "SELECT age, count(*) FROM customers GROUP BY age")
	if err != nil {
		t.Fatal(err)
	}
	limited, err := e.Query(ctx, "SELECT age, count(*) FROM customers GROUP BY age LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.Rows) != 3 {
		t.Fatalf("LIMIT 3 returned %d rows", len(limited.Rows))
	}
	if joinRows(limited.Rows) != joinRows(unlimited.Rows[:3]) {
		t.Fatalf("LIMIT did not take the canonical-order prefix\n got: %s\nwant: %s",
			joinRows(limited.Rows), joinRows(unlimited.Rows[:3]))
	}

	empty, err := e.Query(ctx, "SELECT segment, count(*) FROM customers WHERE age >= 99 GROUP BY segment")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rows) != 0 {
		t.Fatalf("empty grouped aggregate returned %d rows", len(empty.Rows))
	}

	ident, err := e.Query(ctx, "SELECT count(*), sum(visits), min(visits), avg(visits) FROM customers WHERE age >= 99")
	if err != nil {
		t.Fatal(err)
	}
	if len(ident.Rows) != 1 {
		t.Fatalf("ungrouped aggregate over empty input returned %d rows, want identity row", len(ident.Rows))
	}
	row := ident.Rows[0]
	if row[0].AsInt() != 0 || !row[1].IsNull() || !row[2].IsNull() || !row[3].IsNull() {
		t.Fatalf("identity row = %s, want (0, NULL, NULL, NULL)", row)
	}

	// A class outside the model's domain: the optimizer proves the query
	// empty and answers from a constant scan — the aggregate must still
	// produce its identity row without reading the table.
	constRes, err := e.Query(ctx, `SELECT count(*) FROM customers
		PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
		WHERE m.segment = 'martian'`)
	if err != nil {
		t.Fatal(err)
	}
	if constRes.AccessPath != "constant" {
		t.Fatalf("access path = %s, want constant\n%s", constRes.AccessPath, constRes.Plan)
	}
	if len(constRes.Rows) != 1 || constRes.Rows[0][0].AsInt() != 0 {
		t.Fatalf("constant-scan aggregate = %v, want one zero-count row", constRes.Rows)
	}
}

// TestAggregateEnvelopeAttribution checks that WithAnalyze splits
// filter rejections under an aggregate exactly as it does for row
// queries: the residual predicate runs before accumulation and its
// rejections are attributed envelope-vs-residual in the report.
func TestAggregateEnvelopeAttribution(t *testing.T) {
	e := seedEngine(t, 20000)
	trainNB(t, e)
	ctx := context.Background()
	sql := `SELECT count(*) FROM customers
		PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
		WHERE m.segment = 'budget'`
	res, err := e.Query(ctx, sql, WithAnalyze(), WithForcedPath("seqscan"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyze == nil || !res.Analyze.IsAggregate {
		t.Fatal("no aggregate analyze report")
	}
	var attributed bool
	for _, op := range res.Analyze.Ops {
		if op.HasAttribution && op.EnvRejected+op.ResidRejected > 0 {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("no envelope-vs-residual attribution under the aggregate:\n%s", res.Analyze.Render(false))
	}
	// The attribution run must not change the answer.
	plain, err := e.Query(ctx, sql, WithForcedPath("seqscan"))
	if err != nil {
		t.Fatal(err)
	}
	if joinRows(res.Rows) != joinRows(plain.Rows) {
		t.Fatal("WithAnalyze changed the aggregate result")
	}
}

// TestAggregateExplainAnalyzeGolden locks the rendered EXPLAIN ANALYZE
// output of aggregate plans — the HashAgg partial/final pair, the
// partial-merge counter, and (for the mining query) rejection
// attribution — at DOP 1 and 4. Regenerate with: go test -run Golden -update .
func TestAggregateExplainAnalyzeGolden(t *testing.T) {
	e := analyzeFixture(t)
	cases := []struct {
		name string
		sql  string
	}{
		{"agg_group", "SELECT segment, count(*), sum(visits), avg(income) FROM customers WHERE age >= 3 GROUP BY segment"},
		{"agg_pred", `SELECT m.segment, count(*), avg(visits) FROM customers
			PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
			WHERE m.segment = 'budget' GROUP BY m.segment`},
	}
	for _, tc := range cases {
		for _, dop := range []int{1, 4} {
			name := fmt.Sprintf("%s_dop%d", tc.name, dop)
			t.Run(name, func(t *testing.T) {
				res, err := e.Query(context.Background(), tc.sql, WithAnalyze(), WithDOP(dop))
				if err != nil {
					t.Fatal(err)
				}
				if res.Analyze == nil {
					t.Fatal("no analyze report")
				}
				got := res.Analyze.Render(true)
				path := filepath.Join("testdata", "analyze", name+".golden")
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (regenerate with -update)", err)
				}
				if got != string(want) {
					t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
				}
			})
		}
	}
}
