package minequery

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/analyze")

// analyzeFixture is the shared engine for golden tests: seeded data,
// one trained model, two indexes — enough to exercise every access
// path. Everything about it is deterministic (fixed rand seed, fixed
// insertion order), which is what makes byte-exact goldens possible.
func analyzeFixture(t testing.TB) *Engine {
	t.Helper()
	e := seedEngine(t, 20000)
	trainNB(t, e)
	if err := e.CreateIndex("ix_age_income", "customers", "age", "income"); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("ix_income", "customers", "income"); err != nil {
		t.Fatal(err)
	}
	if err := e.Analyze("customers"); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestExplainAnalyzeGolden locks the rendered EXPLAIN ANALYZE output
// for each access path at DOP 1 and 4. Timings and the per-worker
// morsel distribution are elided by Render(true); everything else —
// operator tree, estimated and actual rows, batch counts, rejection
// attribution, leaf I/O, worker count — must be byte-identical across
// runs and platforms. Regenerate with: go test -run Golden -update .
func TestExplainAnalyzeGolden(t *testing.T) {
	e := analyzeFixture(t)
	cases := []struct {
		name     string
		sql      string
		wantPath string
	}{
		{"seqscan", strings.Replace(nbQuery, "'vip'", "'budget'", 1), "seqscan"},
		{"index", nbQuery, "index"},
		{"index_union", "SELECT id FROM customers WHERE income = 7 AND (age = 0 OR age = 9)", "index-union"},
		{"constant", strings.Replace(nbQuery, "'vip'", "'martian'", 1), "constant"},
	}
	for _, tc := range cases {
		for _, dop := range []int{1, 4} {
			name := fmt.Sprintf("%s_dop%d", tc.name, dop)
			t.Run(name, func(t *testing.T) {
				res, err := e.Query(context.Background(), tc.sql, WithAnalyze(), WithDOP(dop))
				if err != nil {
					t.Fatal(err)
				}
				if res.AccessPath != tc.wantPath {
					t.Fatalf("access path = %s, want %s\n%s", res.AccessPath, tc.wantPath, res.Plan)
				}
				if res.Analyze == nil {
					t.Fatal("no analyze report")
				}
				got := res.Analyze.Render(true)
				path := filepath.Join("testdata", "analyze", name+".golden")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (regenerate with -update)", err)
				}
				if got != string(want) {
					t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
				}
			})
		}
	}
}

// TestExplainAnalyzeColumnarGolden locks the rendered EXPLAIN ANALYZE
// output for columnar executions: the storage-format line, the frozen
// term order of the fused scan-filter, and every term's evaluated and
// rejected counters. The counters are deterministic at any DOP because
// the adaptive-ordering warmup runs serially and the frozen evaluation
// is schedule-independent; timings are elided as usual. Regenerate
// with: go test -run Golden -update .
func TestExplainAnalyzeColumnarGolden(t *testing.T) {
	e := analyzeFixture(t)
	if err := e.EnableColumnar("customers"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		sql  string
	}{
		// Envelope-carrying mining query whose class region is wide
		// enough that the optimizer scans: the envelope filter fuses into
		// the columnar scan.
		{"col_seqscan", strings.Replace(nbQuery, "'vip'", "'budget'", 1)},
		// Wide data disjunction: exercises the adaptive OR ordering with
		// four terms of very different selectivity.
		{"col_disjuncts", `SELECT id FROM customers WHERE age >= 8 OR income <= 1 OR visits >= 90 OR age = 5`},
		// Conjunction: adaptive AND ordering, most-rejecting term first.
		{"col_conjuncts", `SELECT id FROM customers WHERE age >= 2 AND income <= 6 AND visits >= 10`},
	}
	for _, tc := range cases {
		for _, dop := range []int{1, 4} {
			name := fmt.Sprintf("%s_dop%d", tc.name, dop)
			t.Run(name, func(t *testing.T) {
				res, err := e.Query(context.Background(), tc.sql, WithAnalyze(), WithDOP(dop))
				if err != nil {
					t.Fatal(err)
				}
				if res.StorageFormat != "columnar" {
					t.Fatalf("storage format = %q, want columnar\n%s", res.StorageFormat, res.Plan)
				}
				if res.Analyze == nil {
					t.Fatal("no analyze report")
				}
				got := res.Analyze.Render(true)
				path := filepath.Join("testdata", "analyze", name+".golden")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (regenerate with -update)", err)
				}
				if got != string(want) {
					t.Errorf("report drifted from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
				}
			})
		}
	}
}

// TestExplainAnalyzeGoldenStable runs each golden case twice and
// demands identical output — the determinism property the goldens rely
// on, checked directly so a flaky report fails here with a clear
// message rather than as a mysterious golden diff.
func TestExplainAnalyzeGoldenStable(t *testing.T) {
	e := analyzeFixture(t)
	sql := strings.Replace(nbQuery, "'vip'", "'budget'", 1)
	for _, dop := range []int{1, 4} {
		var first string
		for i := 0; i < 2; i++ {
			res, err := e.Query(context.Background(), sql, WithAnalyze(), WithDOP(dop))
			if err != nil {
				t.Fatal(err)
			}
			got := res.Analyze.Render(true)
			if i == 0 {
				first = got
			} else if got != first {
				t.Errorf("dop %d: report not stable across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", dop, first, got)
			}
		}
	}
}
