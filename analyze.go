package minequery

import (
	"fmt"
	"strings"
	"time"

	"minequery/internal/catalog"
	"minequery/internal/exec"
	"minequery/internal/plan"
)

// OpActuals is one plan operator's estimated-vs-actual execution
// profile in an AnalyzeReport. Row and batch counts are exact and
// deterministic; Time is wall clock and varies run to run.
type OpActuals struct {
	// Op is the operator's one-line description (plan.Explain form);
	// Depth is its indentation level in the plan tree.
	Op    string
	Depth int
	// EstRows is the optimizer's output-cardinality estimate for this
	// operator; Rows is what it actually produced.
	EstRows float64
	Rows    int64
	Batches int64
	// Time is wall time inside the operator, inclusive of its children.
	Time time.Duration
	// Leaf I/O, set on the scan leaf only (HasIO): the query's own page
	// and tuple accounting.
	HasIO         bool
	SeqPageReads  int64
	RandPageReads int64
	TupleReads    int64
	// Filter profile (IsFilter): how many input rows the filter dropped,
	// and — when envelope attribution ran (HasAttribution) — how the
	// drops split between the added envelope and the query's own
	// residual predicate.
	IsFilter       bool
	Rejected       int64
	HasAttribution bool
	EnvRejected    int64
	ResidRejected  int64
}

// WorkerActuals is one morsel-scan worker's share of a parallel scan.
type WorkerActuals struct {
	Morsels int64
	Rows    int64
	Time    time.Duration
}

// AnalyzeReport is the structured EXPLAIN ANALYZE result: the executed
// plan annotated with per-operator actuals, parallel-scan worker
// shares, and the execution totals.
type AnalyzeReport struct {
	// Ops lists the plan operators in Explain order (pre-order walk).
	Ops []OpActuals
	// DOP is the effective scan parallelism; Workers has one entry per
	// morsel-scan worker when DOP > 1 and the plan scanned sequentially.
	DOP     int
	Workers []WorkerActuals
	// AccessPath classifies how the base table was read.
	AccessPath string
	// Stats is the execution's measured cost (same values as
	// Result.Stats).
	Stats ExecStats
	// Attribution reports whether envelope-vs-residual rejection
	// attribution ran (WithAnalyze).
	Attribution bool
	// Fallback reports that this execution is the degraded re-run on
	// the baseline sequential scan after the optimized index path
	// failed transiently; FallbackReason is the triggering error.
	Fallback       bool
	FallbackReason string
	// Retries counts transient failures absorbed by the retry layer
	// during this execution.
	Retries int64
	// PartitionsTotal/PartitionsPruned mirror the Result fields: how
	// many partitions the table has (0 when unpartitioned) and how many
	// the optimizer proved disjoint from the predicate.
	PartitionsTotal  int
	PartitionsPruned int
	// IsAggregate reports that the plan aggregated (GROUP BY or
	// aggregate select items); AggMerges counts the partial-aggregate
	// state merges folded into the final result (worker tables, columnar
	// group workers, partitions — and shards at a coordinator).
	IsAggregate bool
	AggMerges   int64
	// StorageFormat is "columnar" when the scan leaf ran on the
	// column-group sidecar ("" for row-path executions — the row format
	// is not reported so row-path output is unchanged). ColumnGroups is
	// the number of column groups the scan processed.
	StorageFormat string
	ColumnGroups  int64
	// TermCombiner ("AND"/"OR"), TermOrder, and Terms report the
	// adaptive predicate-term ordering of a fused columnar scan-filter:
	// the frozen evaluation order (original term indices) and each
	// term's measured evaluation/rejection counters. All deterministic
	// at any DOP (the warmup runs serially, then the order freezes).
	TermCombiner string
	TermOrder    []int
	Terms        []TermActuals
}

// TermActuals is one predicate term's measured counters in a columnar
// scan-filter: how many candidate rows reached it and how many it
// rejected. Terms later in the frozen order see fewer candidates
// (short-circuiting), which is exactly the effect the ordering buys.
type TermActuals struct {
	Index     int
	Term      string
	Evaluated int64
	Rejected  int64
}

// buildAnalyzeReport assembles the report from the executed plan and
// its collector.
func buildAnalyzeReport(root plan.Node, col *exec.Collector, t *catalog.Table, sel float64, dop int, st ExecStats, attribution bool) *AnalyzeReport {
	rep := &AnalyzeReport{
		DOP:         dop,
		AccessPath:  plan.PathOf(root).String(),
		Stats:       st,
		Attribution: attribution,
	}
	for _, w := range col.Workers() {
		rep.Workers = append(rep.Workers, WorkerActuals{
			Morsels: w.Morsels.Load(),
			Rows:    w.Rows.Load(),
			Time:    time.Duration(w.WallNanos.Load()),
		})
	}
	rowCount := t.Heap.Len()
	attrFilter := plan.Node(nil)
	if attribution {
		if f := scanLevelFilter(root); f != nil {
			attrFilter = f
		}
	}
	io := col.IO.Snapshot()
	var walk func(n plan.Node, depth int)
	walk = func(n plan.Node, depth int) {
		op := col.Op(n)
		oa := OpActuals{
			Op:      n.Describe(),
			Depth:   depth,
			EstRows: estimateRows(n, rowCount, sel),
			Rows:    op.Rows.Load(),
			Batches: op.Batches.Load(),
			Time:    time.Duration(op.WallNanos.Load()),
		}
		switch x := n.(type) {
		case *plan.SeqScan, *plan.IndexSeek, *plan.IndexUnion, *plan.ConstScan:
			// Single-table plans have one scan leaf, so the query's whole
			// I/O attribution belongs to it.
			oa.HasIO = true
			oa.SeqPageReads = io.SeqPageReads
			oa.RandPageReads = io.RandPageReads
			oa.TupleReads = io.TupleReads
			if info := col.VecInfo(n); info != nil {
				rep.StorageFormat = "columnar"
				rep.ColumnGroups = info.Groups
				rep.TermCombiner = info.Combiner
				rep.TermOrder = append([]int(nil), info.Order...)
				for _, tm := range info.Terms {
					rep.Terms = append(rep.Terms, TermActuals{
						Index:     tm.Index,
						Term:      tm.Term,
						Evaluated: tm.Evaluated,
						Rejected:  tm.Evaluated - tm.Passed,
					})
				}
			}
		case *plan.Filter:
			oa.IsFilter = true
			oa.Rejected = col.Op(x.Child).Rows.Load() - oa.Rows
			if n == attrFilter {
				oa.HasAttribution = true
				oa.EnvRejected = op.EnvRejected.Load()
				oa.ResidRejected = op.ResidRejected.Load()
			}
		}
		rep.Ops = append(rep.Ops, oa)
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	if finalAggOf(root) != nil {
		rep.IsAggregate = true
		rep.AggMerges = col.AggMerges.Load()
	}
	return rep
}

// estimateRows is the optimizer's output-cardinality estimate for one
// operator: table cardinality at scan leaves, the data-predicate
// selectivity estimate at filters and index paths, pass-through for
// prediction joins and projections. Mining-predicate selectivity is
// unknown to the optimizer, so a post-prediction filter's est-vs-actual
// gap is expected — that gap is exactly what EXPLAIN ANALYZE surfaces.
func estimateRows(n plan.Node, rowCount int64, sel float64) float64 {
	switch x := n.(type) {
	case *plan.SeqScan:
		return float64(rowCount)
	case *plan.ConstScan:
		return 0
	case *plan.IndexSeek, *plan.IndexUnion:
		return sel * float64(rowCount)
	case *plan.Filter:
		return sel * float64(rowCount)
	case *plan.Predict:
		return estimateRows(x.Child, rowCount, sel)
	case *plan.Project:
		return estimateRows(x.Child, rowCount, sel)
	case *plan.Limit:
		child := estimateRows(x.Child, rowCount, sel)
		if child > float64(x.N) {
			return float64(x.N)
		}
		return child
	case *plan.HashAgg:
		// An ungrouped aggregate emits exactly one row. For GROUP BY the
		// optimizer keeps no group-key distinct counts, so the input
		// cardinality stands in as an upper bound; the est-vs-actual gap
		// is then the measured grouping factor.
		if len(x.GroupBy) == 0 {
			return 1
		}
		return estimateRows(x.Child, rowCount, sel)
	}
	return 0
}

// Render formats the report as indented text, one operator per line
// with its actuals in parentheses. elideTimings replaces every wall
// time (and the nondeterministic per-worker morsel distribution) with
// stable placeholders, so rendered output is byte-identical across
// runs — the golden-test and plan-diff mode.
func (r *AnalyzeReport) Render(elideTimings bool) string {
	var b strings.Builder
	for _, op := range r.Ops {
		b.WriteString(strings.Repeat("  ", op.Depth))
		b.WriteString(op.Op)
		fmt.Fprintf(&b, " (est_rows=%.0f act_rows=%d batches=%d time=%s",
			op.EstRows, op.Rows, op.Batches, renderTime(op.Time, elideTimings))
		if op.IsFilter {
			fmt.Fprintf(&b, " rejected=%d", op.Rejected)
			if op.HasAttribution {
				fmt.Fprintf(&b, " env_rejected=%d residual_rejected=%d", op.EnvRejected, op.ResidRejected)
			}
		}
		if op.HasIO {
			fmt.Fprintf(&b, " seq_pages=%d rand_pages=%d tuples=%d",
				op.SeqPageReads, op.RandPageReads, op.TupleReads)
		}
		b.WriteString(")\n")
	}
	if r.StorageFormat != "" {
		// Printed only for columnar executions, so row-path output (and
		// its golden files) is unchanged.
		fmt.Fprintf(&b, "storage: %s groups=%d\n", r.StorageFormat, r.ColumnGroups)
		if r.TermCombiner != "" {
			fmt.Fprintf(&b, "term order (%s): %v\n", r.TermCombiner, r.TermOrder)
			for _, t := range r.Terms {
				fmt.Fprintf(&b, "  term %d: %s evaluated=%d rejected=%d\n",
					t.Index, t.Term, t.Evaluated, t.Rejected)
			}
		}
	}
	if r.DOP > 1 && len(r.Workers) > 0 {
		fmt.Fprintf(&b, "workers: %d\n", len(r.Workers))
		if !elideTimings {
			// The morsel distribution across workers depends on scheduling,
			// so it is only shown in live (non-golden) output.
			for i, w := range r.Workers {
				fmt.Fprintf(&b, "  worker %d: morsels=%d rows=%d time=%s\n",
					i, w.Morsels, w.Rows, renderTime(w.Time, false))
			}
		}
	}
	if r.PartitionsTotal > 0 {
		fmt.Fprintf(&b, "partitions: %d/%d pruned\n", r.PartitionsPruned, r.PartitionsTotal)
	}
	if r.IsAggregate {
		// Merge count is deterministic for a fixed configuration: one
		// merge per extra worker table (plus one per extra shard at a
		// coordinator), so goldens at a pinned DOP stay byte-exact.
		fmt.Fprintf(&b, "aggregate: partial_merges=%d\n", r.AggMerges)
	}
	fmt.Fprintf(&b, "execution: path=%s seq_pages=%d rand_pages=%d tuples=%d cost_units=%.1f time=%s\n",
		r.AccessPath, r.Stats.SeqPageReads, r.Stats.RandPageReads, r.Stats.TupleReads,
		r.Stats.CostUnits, renderTime(r.Stats.Duration, elideTimings))
	if r.Retries > 0 {
		fmt.Fprintf(&b, "retries: %d transient failure(s) absorbed\n", r.Retries)
	}
	if r.Fallback {
		fmt.Fprintf(&b, "fallback: index path failed transiently (%s); re-ran baseline sequential scan\n", r.FallbackReason)
	}
	return b.String()
}

func renderTime(d time.Duration, elide bool) string {
	if elide {
		return "<elided>"
	}
	return d.String()
}
