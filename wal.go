package minequery

// WAL attachment and recovery. The engine is born volatile; EnableWAL
// attaches a log device, replays whatever durable history it holds, and
// from then on logs every Exec statement before applying it.
//
// Replay runs the recovered records through the same applyDML /
// createModelLocked code as live statements — including the write-volume
// retrain accounting — so the recovered engine reaches the same model
// timeline (same versions, same epochs relative to the log) that the
// pre-crash engine passed through. For that to hold, callers must
// configure the engine identically before EnableWAL (same schema loads,
// same SetRetrainPolicy) as on the original run.

import (
	"fmt"

	"minequery/internal/qerr"
	"minequery/internal/sqlparse"
	"minequery/internal/wal"
)

// WALDevice is the byte device a WAL lives on (re-exported so callers
// never import internal packages). MemWALDevice models a page cache
// with separate durable and pending regions for crash tests;
// OpenWALFile returns a file-backed device whose Sync is fsync.
type WALDevice = wal.Device

// MemWALDevice is the in-memory crash-testable device.
type MemWALDevice = wal.MemDevice

// NewMemWALDevice returns an empty in-memory WAL device.
func NewMemWALDevice() *MemWALDevice { return wal.NewMemDevice() }

// NewMemWALDeviceFrom returns an in-memory WAL device whose durable
// contents start as b — typically a crash image from a previous run.
func NewMemWALDeviceFrom(b []byte) *MemWALDevice { return wal.NewMemDeviceFrom(b) }

// OpenWALFile opens (creating if absent) a file-backed WAL device.
func OpenWALFile(path string) (*wal.FileDevice, error) { return wal.OpenFileDevice(path) }

// EnableWAL attaches a write-ahead log to the engine. The device's
// existing contents are replayed first (recovering from a crash of a
// previous incarnation); afterwards every write statement is appended
// and fsynced before it is applied. Returns the number of replayed
// records. Bulk-load Insert/InsertBatch remain unlogged — load seed
// data first, then enable the WAL for the statement write path.
func (e *Engine) EnableWAL(dev wal.Device) (int, error) {
	e.writeMu.Lock()
	defer e.writeMu.Unlock()
	if e.wlog.Load() != nil {
		return 0, fmt.Errorf("minequery: WAL already enabled")
	}
	l, rep, err := wal.Open(dev)
	if err != nil {
		return 0, fmt.Errorf("minequery: open WAL: %w", err)
	}
	e.replaying = true
	for i := range rep.Records {
		if err := e.replayRecord(&rep.Records[i]); err != nil {
			e.replaying = false
			return 0, fmt.Errorf("minequery: WAL replay record %d/%d: %w", i+1, len(rep.Records), err)
		}
	}
	e.replaying = false
	l.SetFaults(e.execOpts.Faults)
	e.wlog.Store(l)
	e.metrics.Load().walReplay(int64(rep.Frames))
	return len(rep.Records), nil
}

// WALEnabled reports whether a write-ahead log is attached.
func (e *Engine) WALEnabled() bool { return e.wlog.Load() != nil }

// replayRecord re-applies one recovered record. Caller holds writeMu
// with e.replaying set (so the apply path does not re-log).
func (e *Engine) replayRecord(rec *wal.Record) error {
	switch rec.Kind {
	case wal.RecordDML:
		t, ok := e.cat.Table(rec.Table)
		if !ok {
			return fmt.Errorf("%w %q (schema must be loaded before EnableWAL)", qerr.ErrUnknownTable, rec.Table)
		}
		n, err := e.applyDML(t, rec.Muts)
		if err != nil {
			return err
		}
		// A threshold retrain can fail deterministically (e.g. the log's
		// deletes emptied the table before the trigger fired). On the live
		// path that surfaced as an ErrRetrainFailed alongside the applied,
		// logged DML while the engine kept running — so replay must reach
		// the same state: tolerate the retrain failure (ErrRetrainFailed is
		// the only error noteWrites can return) and keep recovering. Only
		// DML apply failures abort recovery.
		_, _ = e.noteWrites(t.Name, n)
		return nil
	case wal.RecordDDL:
		st, err := sqlparse.ParseStatement(rec.DDL)
		if err != nil {
			return fmt.Errorf("logged DDL: %w", err)
		}
		if st.Kind != sqlparse.StmtCreateModel {
			return fmt.Errorf("logged DDL is not CREATE MODEL: %q", rec.DDL)
		}
		cm := st.CreateModel
		_, err = e.createModelLocked(&modelDef{
			name:    cm.Name,
			table:   cm.Table,
			family:  cm.Family,
			predict: cm.Predict,
			feats:   cm.Feats,
			star:    cm.Star,
			where:   cm.Where,
			sql:     rec.DDL,
		})
		return err
	}
	return fmt.Errorf("unknown WAL record kind %d", rec.Kind)
}

// walAppend logs one record if a WAL is attached and the engine is not
// replaying. Caller holds writeMu. On failure nothing has been applied,
// the statement errors out, and the log is sticky-broken — the engine
// refuses further writes rather than drift from its durable history.
func (e *Engine) walAppend(rec wal.Record) error {
	l := e.wlog.Load()
	if l == nil || e.replaying {
		return nil
	}
	if err := l.Append(rec); err != nil {
		return fmt.Errorf("minequery: WAL append: %w", err)
	}
	e.metrics.Load().walAppend()
	return nil
}
