package minequery

// Partitioned-table coverage at the public API: a differential sweep
// re-running the random query generator over range-partitioned tables
// with uniform, skewed, and empty partitions (pruned execution vs the
// forced unpruned scan oracle at DOP 1 and 4, with a chaos slice
// injecting page-read faults into the pruned scans), plus the
// 16-partition acceptance check — a selective mining predicate must
// prune at least half the partitions and cut sequential page reads
// against an identical unpartitioned table.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// buildPartDiffEngine mirrors buildDiffEngine over a range-partitioned
// table: "t" is partitioned on num by the given bounds, with the same
// indexes and three trained models (two on num — whose envelopes can
// drive pruning — one on cat).
func buildPartDiffEngine(t *testing.T, seed int64, rows int, bounds []Value) (*Engine, []diffModel) {
	t.Helper()
	eng := New()
	if err := eng.CreatePartitionedTable("t", MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "cat", Kind: KindString},
		Column{Name: "num", Kind: KindInt},
	), "num", bounds); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	labelsCls := make([]string, rows)
	batch := make([]Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		cat := fmt.Sprintf("c%d", r.Intn(8))
		num := r.Intn(100)
		batch = append(batch, Tuple{Int(int64(i)), Str(cat), Int(int64(num))})
		if num >= 85 {
			labelsCls[i] = "high"
		} else {
			labelsCls[i] = "low"
		}
	}
	if err := eng.InsertBatch("t", batch); err != nil {
		t.Fatal(err)
	}
	for _, ix := range [][]string{{"cat"}, {"num"}} {
		if err := eng.CreateIndex("ix_"+strings.Join(ix, "_"), "t", ix...); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Analyze("t"); err != nil {
		t.Fatal(err)
	}

	if err := eng.CreateTable("t_lbl", MustSchema(
		Column{Name: "cat", Kind: KindString},
		Column{Name: "num", Kind: KindInt},
		Column{Name: "cls", Kind: KindString},
		Column{Name: "grp", Kind: KindString},
	)); err != nil {
		t.Fatal(err)
	}
	lb := make([]Tuple, 0, rows)
	for i, row := range batch {
		grp := "a"
		if row[1].AsString() >= "c4" {
			grp = "b"
		}
		lb = append(lb, Tuple{row[1], row[2], Str(labelsCls[i]), Str(grp)})
	}
	if err := eng.InsertBatch("t_lbl", lb); err != nil {
		t.Fatal(err)
	}

	var models []diffModel
	add := func(mi *ModelInfo, err error, alias, predCol string, onCols ...string) {
		t.Helper()
		if err != nil {
			t.Fatalf("train %s: %v", alias, err)
		}
		models = append(models, diffModel{
			name: mi.Name, alias: alias, predCol: predCol, onCols: onCols, classes: mi.Classes,
		})
	}
	mi, err := eng.TrainDecisionTree("pdt", "cls", "t_lbl", []string{"num"}, "cls", TreeOptions{})
	add(mi, err, "m_dt", "cls", "num")
	mi, err = eng.TrainNaiveBayes("pnb", "grp", "t_lbl", []string{"cat"}, "grp", BayesOptions{})
	add(mi, err, "m_nb", "grp", "cat")
	mi, err = eng.TrainKMeans("pkm", "cluster", "t_lbl", []string{"num"}, ClusterOptions{K: 3, Seed: 7})
	add(mi, err, "m_km", "cluster", "num")
	return eng, models
}

// TestDifferentialPartitionedRandomQueries sweeps the random query
// generator over three partitioning shapes — uniform, skewed with
// tiny edge partitions, and 16 random boundaries (several partitions
// empty, one boundary past the data range) — checking pruned execution
// against the forced unpruned scan oracle at DOP 1 and 4. Every 6th
// iteration runs under a seeded page-read injector with retries on, so
// pruned partition scans absorb transient faults mid-sweep; the row
// sets must still match exactly.
func TestDifferentialPartitionedRandomQueries(t *testing.T) {
	const seed = 20260805
	perShape := 167 // 3 shapes ≈ 500 iterations
	if testing.Short() {
		perShape = 40
	}
	boundSets := [][]Value{
		{Int(25), Int(50), Int(75)},
		// Skewed: tiny partitions at both edges, two huge ones in the
		// middle, and [97,∞) nearly empty.
		{Int(2), Int(4), Int(50), Int(95), Int(97)},
		// 16 partitions from random boundaries; 120 and 140 lie past the
		// data range (num < 100), so the last partitions stay empty.
		randomBounds(seed, 13, 120),
	}
	ctx := context.Background()
	pruningSeen := 0
	for shape, bounds := range boundSets {
		eng, models := buildPartDiffEngine(t, seed+int64(shape), 900, bounds)
		pageFaults := NewFaultInjector(seed, FaultRule{Site: FaultSitePageReadSeq, EveryN: 7, Err: ErrInjected})
		r := rand.New(rand.NewSource(seed + int64(shape)))
		for i := 0; i < perShape; i++ {
			sql := genQuery(r, models)
			faulty := i%6 == 5

			base, err := eng.Query(ctx, sql, WithForcedPath("seqscan"), WithDOP(1))
			if err != nil {
				t.Fatalf("shape %d iter %d: oracle failed for %q: %v", shape, i, sql, err)
			}
			want := sortedKeys(base.Rows)

			if faulty {
				eng.SetFaults(pageFaults)
			}
			for _, dop := range []int{1, 4} {
				res, err := eng.Query(ctx, sql, WithDOP(dop))
				if err != nil {
					t.Fatalf("shape %d iter %d (faulty=%v, dop=%d): %q: %v", shape, i, faulty, dop, sql, err)
				}
				if got := sortedKeys(res.Rows); !sameRowSets(got, want) {
					t.Fatalf("shape %d iter %d (faulty=%v, dop=%d, path=%s, pruned=%d/%d): %q returned %d rows, oracle %d\nseed=%d",
						shape, i, faulty, dop, res.AccessPath, res.PartitionsPruned, res.PartitionsTotal,
						sql, len(res.Rows), len(base.Rows), seed)
				}
				if res.PartitionsTotal != len(bounds)+1 {
					t.Fatalf("shape %d iter %d: PartitionsTotal = %d, want %d",
						shape, i, res.PartitionsTotal, len(bounds)+1)
				}
				if res.PartitionsPruned > 0 {
					pruningSeen++
				}
			}
			if faulty {
				eng.SetFaults(nil)
			}
		}
	}
	if pruningSeen == 0 {
		t.Fatal("no iteration pruned a partition; generator or pruner drifted")
	}
	t.Logf("%d executions pruned at least one partition", pruningSeen)
}

// randomBounds returns n strictly increasing int bounds seeded off the
// run seed, with the last one forced past the data range so the final
// partitions are empty.
func randomBounds(seed int64, n int, beyond int64) []Value {
	r := rand.New(rand.NewSource(seed * 31))
	set := map[int64]bool{}
	for len(set) < n {
		set[int64(r.Intn(100))] = true
	}
	vals := make([]int64, 0, n+2)
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	vals = append(vals, beyond, beyond+20)
	out := make([]Value, len(vals))
	for i, v := range vals {
		out[i] = Int(v)
	}
	return out
}

// TestPartitionPruningAcceptance is the headline check: on a
// 16-partition table with no indexes, a selective mining predicate must
// prune at least half the partitions, EXPLAIN ANALYZE must say so, and
// sequential page reads must drop to a fraction of an identical
// unpartitioned table's scan.
func TestPartitionPruningAcceptance(t *testing.T) {
	const rows = 8000
	schema := func() *Schema {
		return MustSchema(
			Column{Name: "id", Kind: KindInt},
			Column{Name: "num", Kind: KindInt},
			Column{Name: "cls", Kind: KindString},
		)
	}
	bounds := make([]Value, 0, 15)
	for b := int64(6); b <= 90; b += 6 {
		bounds = append(bounds, Int(b)) // 15 bounds -> 16 partitions
	}
	part, plain := New(), New()
	if err := part.CreatePartitionedTable("t", schema(), "num", bounds); err != nil {
		t.Fatal(err)
	}
	if err := plain.CreateTable("t", schema()); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	batch := make([]Tuple, 0, rows)
	for i := 0; i < rows; i++ {
		num := int64(r.Intn(100))
		cls := "low"
		if num >= 88 {
			cls = "high" // 12% of rows, confined to the top partitions
		}
		batch = append(batch, Tuple{Int(int64(i)), Int(num), Str(cls)})
	}
	for _, eng := range []*Engine{part, plain} {
		if err := eng.InsertBatch("t", batch); err != nil {
			t.Fatal(err)
		}
		if err := eng.Analyze("t"); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.TrainDecisionTree("dt", "cls", "t", []string{"num"}, "cls", TreeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	reg := NewMetricsRegistry()
	part.RegisterMetrics(reg)

	const sql = `SELECT * FROM t PREDICTION JOIN dt AS m ON m.num = t.num WHERE m.cls = 'high'`
	ctx := context.Background()
	report, res, err := part.ExplainAnalyze(ctx, sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsTotal != 16 {
		t.Fatalf("PartitionsTotal = %d, want 16", res.PartitionsTotal)
	}
	if res.PartitionsPruned < 8 {
		t.Fatalf("PartitionsPruned = %d, want >= 8 (report:\n%s)", res.PartitionsPruned, report)
	}
	wantLine := fmt.Sprintf("partitions: %d/16 pruned", res.PartitionsPruned)
	if !strings.Contains(report, wantLine) {
		t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", wantLine, report)
	}

	// The new counters moved and are exposed under their frozen names
	// (checked now, while exactly one query has run on this engine).
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	wantPruned := fmt.Sprintf("minequery_partitions_pruned_total %d", res.PartitionsPruned)
	wantScanned := fmt.Sprintf("minequery_partitions_scanned_total %d", 16-res.PartitionsPruned)
	if !strings.Contains(exp, wantPruned) || !strings.Contains(exp, wantScanned) {
		t.Fatalf("metrics exposition missing %q / %q:\n%s", wantPruned, wantScanned, exp)
	}

	// Same rows as the unpruned oracle and as the unpartitioned engine.
	oracle, err := part.Query(ctx, sql, WithForcedPath("seqscan"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := plain.Query(ctx, sql, WithForcedPath("seqscan"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || !sameRowSets(sortedKeys(res.Rows), sortedKeys(oracle.Rows)) ||
		!sameRowSets(sortedKeys(res.Rows), sortedKeys(base.Rows)) {
		t.Fatalf("row sets diverge: pruned=%d oracle=%d unpartitioned=%d",
			len(res.Rows), len(oracle.Rows), len(base.Rows))
	}

	// The I/O win: the pruned scan must read at most half the pages the
	// unpartitioned full scan reads (it actually reads ~2/16 plus
	// partial-page slack).
	if res.Stats.SeqPageReads*2 > base.Stats.SeqPageReads {
		t.Fatalf("pruned scan read %d seq pages, unpartitioned full scan %d; want at most half",
			res.Stats.SeqPageReads, base.Stats.SeqPageReads)
	}

	// The forced oracle scanned everything and must not count as pruning.
	if oracle.PartitionsPruned != 0 {
		t.Fatalf("forced seqscan reports %d pruned partitions", oracle.PartitionsPruned)
	}
}

// TestCreatePartitionedTableValidation pins the public-API error paths.
func TestCreatePartitionedTableValidation(t *testing.T) {
	eng := New()
	sch := MustSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	cases := []struct {
		name    string
		col     string
		bounds  []Value
		wantErr bool
	}{
		{"ok", "a", []Value{Int(1), Int(2)}, false},
		{"no-such-column", "zzz", []Value{Int(1)}, true},
		{"no-bounds", "a", nil, true},
		{"descending", "a", []Value{Int(5), Int(3)}, true},
		{"duplicate", "a", []Value{Int(5), Int(5)}, true},
		{"null-bound", "a", []Value{Null()}, true},
		{"kind-mismatch", "a", []Value{Str("x")}, true},
	}
	for i, tc := range cases {
		err := eng.CreatePartitionedTable(fmt.Sprintf("t%d", i), sch, tc.col, tc.bounds)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err = %v, wantErr = %v", tc.name, err, tc.wantErr)
		}
	}
	// The surviving table routes inserts and reports its partition count
	// (2 bounds -> 3 partitions).
	if err := eng.Insert("t0", Tuple{Int(1), Str("x")}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(context.Background(), "SELECT * FROM t0 WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsTotal != 3 {
		t.Errorf("partitioned t0: PartitionsTotal = %d, want 3", res.PartitionsTotal)
	}
	// Unpartitioned tables report zero partition info.
	if err := eng.CreateTable("plain", sch); err != nil {
		t.Fatal(err)
	}
	if err := eng.Insert("plain", Tuple{Int(1), Str("x")}); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Query(context.Background(), "SELECT * FROM plain WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionsTotal != 0 || res.PartitionsPruned != 0 {
		t.Errorf("plain table: partitions %d/%d, want 0/0", res.PartitionsPruned, res.PartitionsTotal)
	}
}
