package minequery

import (
	"context"
	"errors"
	"testing"
)

// rowsEqual demands positional equality: prepared execution must be
// byte-identical to the one-shot path, not merely the same multiset.
func rowsEqual(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestPreparedMatchesQueryAtAnyDOP(t *testing.T) {
	e := seedEngine(t, 20000)
	trainNB(t, e)
	if err := e.CreateIndex("ix_age_income", "customers", "age", "income"); err != nil {
		t.Fatal(err)
	}
	want, err := e.Query(context.Background(), nbQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("test needs a non-empty result")
	}
	p, err := e.Prepare(nbQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Valid() {
		t.Fatal("freshly prepared statement must be valid")
	}
	for _, dop := range []int{1, 4} {
		got, err := p.ExecuteOpts(context.Background(), ExecOptions{DOP: dop})
		if err != nil {
			t.Fatalf("DOP %d: %v", dop, err)
		}
		if !rowsEqual(got.Rows, want.Rows) {
			t.Fatalf("DOP %d: prepared rows differ from Query rows", dop)
		}
		if got.Plan != want.Plan || got.AccessPath != want.AccessPath {
			t.Fatalf("DOP %d: prepared plan diverged:\n%s\nwant:\n%s", dop, got.Plan, want.Plan)
		}
	}
	// Repeat executions reuse the same plan object: no re-optimization.
	first := p.Plan()
	if _, err := p.Execute(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.Plan() != first {
		t.Fatal("plan changed across executions")
	}
}

func TestPreparedGoesStale(t *testing.T) {
	stale := func(t *testing.T, mutate func(e *Engine)) {
		t.Helper()
		e := seedEngine(t, 4000)
		trainNB(t, e)
		p, err := e.Prepare(nbQuery)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Execute(context.Background()); err != nil {
			t.Fatal(err)
		}
		mutate(e)
		if p.Valid() {
			t.Fatal("statement still valid after catalog change")
		}
		if _, err := p.Execute(context.Background()); !errors.Is(err, ErrStalePlan) {
			t.Fatalf("err = %v, want ErrStalePlan", err)
		}
		// Re-preparing yields a working statement again.
		p2, err := e.Prepare(nbQuery)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := e.Query(context.Background(), nbQuery)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p2.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !rowsEqual(got.Rows, fresh.Rows) {
			t.Fatal("re-prepared rows differ from fresh Query")
		}
	}
	t.Run("retrain", func(t *testing.T) {
		stale(t, func(e *Engine) { trainNB(t, e) })
	})
	t.Run("index-create", func(t *testing.T) {
		stale(t, func(e *Engine) {
			if err := e.CreateIndex("ix_late", "customers", "age", "income"); err != nil {
				t.Fatal(err)
			}
		})
	})
	t.Run("index-drop", func(t *testing.T) {
		stale(t, func(e *Engine) {
			if err := e.CreateIndex("ix_tmp", "customers", "income"); err != nil {
				t.Fatal(err)
			}
			// The create already staled the statement; the drop must too
			// (epoch strictly increases, never reverts).
			if err := e.DropIndexes("customers"); err != nil {
				t.Fatal(err)
			}
		})
	})
	t.Run("analyze", func(t *testing.T) {
		stale(t, func(e *Engine) {
			if err := e.Analyze("customers"); err != nil {
				t.Fatal(err)
			}
		})
	})
	t.Run("model-drop", func(t *testing.T) {
		stale(t, func(e *Engine) {
			if err := e.DropModel("segmodel"); err != nil {
				t.Fatal(err)
			}
			// Retrain so the helper's re-prepare has a model to bind; the
			// drop alone already bumped the epoch.
			trainNB(t, e)
		})
	})
}

func TestPreparedForceSeqScan(t *testing.T) {
	e := seedEngine(t, 20000)
	trainNB(t, e)
	if err := e.CreateIndex("ix_age_income", "customers", "age", "income"); err != nil {
		t.Fatal(err)
	}
	free, err := e.Prepare(nbQuery)
	if err != nil {
		t.Fatal(err)
	}
	if free.AccessPath() == "seqscan" {
		t.Fatal("fixture must favor an index path for the hint to matter")
	}
	pinned, err := e.PrepareOpts(nbQuery, PrepareOptions{ForceSeqScan: true})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.AccessPath() != "seqscan" {
		t.Fatalf("forced path = %q, want seqscan", pinned.AccessPath())
	}
	a, err := free.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := pinned.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(a.Rows, b.Rows) {
		t.Fatal("forced seqscan changed the result")
	}
}

func TestQueryContextCancel(t *testing.T) {
	e := seedEngine(t, 20000)
	trainNB(t, e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Query(ctx, nbQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := e.Query(ctx, nbQuery, WithBaseline()); !errors.Is(err, context.Canceled) {
		t.Fatalf("baseline err = %v, want context.Canceled", err)
	}
}

func TestEngineEnvelopeCacheSharedAcrossStatements(t *testing.T) {
	e := seedEngine(t, 4000)
	trainNB(t, e)
	cache := &countingCache{m: map[string]CachedEnvelope{}}
	e.SetEnvelopeCache(cache)
	if _, err := e.Query(context.Background(), nbQuery); err != nil {
		t.Fatal(err)
	}
	misses := cache.misses
	if misses == 0 {
		t.Fatal("first query should populate the cache")
	}
	// A different statement with the same mining predicate reuses the
	// derived envelope.
	other := `SELECT id FROM customers
		PREDICTION JOIN segmodel AS m ON m.age = customers.age AND m.income = customers.income
		WHERE m.segment = 'vip' LIMIT 5`
	if _, err := e.Query(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	if cache.hits == 0 {
		t.Fatal("second statement with the same class set missed the cache")
	}
	if cache.misses != misses {
		t.Fatalf("second statement re-derived envelopes (%d new misses)", cache.misses-misses)
	}
}

type countingCache struct {
	m            map[string]CachedEnvelope
	hits, misses int
}

func (c *countingCache) Get(key string) (CachedEnvelope, bool) {
	ce, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return ce, ok
}

func (c *countingCache) Put(key string, ce CachedEnvelope) { c.m[key] = ce }
