// Campaign: the paper's introduction scenario — find site visitors a
// naive Bayes model predicts to be fans of particular sports, for a
// targeted mail campaign. Shows IN mining predicates and the
// constant-scan plan for a label the model can never produce.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"minequery"
)

func main() {
	eng := minequery.New()
	err := eng.CreateTable("visitors", minequery.MustSchema(
		minequery.Column{Name: "visitor_id", Kind: minequery.KindInt},
		minequery.Column{Name: "sports_pages", Kind: minequery.KindInt},
		minequery.Column{Name: "night_visits", Kind: minequery.KindInt},
		minequery.Column{Name: "region", Kind: minequery.KindInt},
		minequery.Column{Name: "fan_of", Kind: minequery.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	rows := make([]minequery.Tuple, 0, 60000)
	for i := 0; i < 60000; i++ {
		sports, night, region := int64(r.Intn(10)), int64(r.Intn(6)), int64(r.Intn(4))
		fan := "none"
		switch {
		case sports >= 8 && night >= 4:
			fan = "baseball"
		case sports >= 8:
			fan = "football"
		}
		rows = append(rows, minequery.Tuple{
			minequery.Int(int64(i)), minequery.Int(sports), minequery.Int(night),
			minequery.Int(region), minequery.Str(fan),
		})
	}
	if err := eng.InsertBatch("visitors", rows); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.TrainNaiveBayes("fans", "fan_of", "visitors",
		[]string{"sports_pages", "night_visits"}, "fan_of", minequery.BayesOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := eng.CreateIndex("ix_sports_night", "visitors", "sports_pages", "night_visits"); err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze("visitors"); err != nil {
		log.Fatal(err)
	}

	// The mailing list: anyone predicted to be a baseball OR football fan.
	const campaign = `SELECT visitor_id FROM visitors
		PREDICTION JOIN fans AS m ON m.sports_pages = visitors.sports_pages AND m.night_visits = visitors.night_visits
		WHERE m.fan_of IN ('baseball', 'football')`
	res, err := eng.Query(context.Background(), campaign)
	if err != nil {
		log.Fatal(err)
	}
	base, err := eng.Query(context.Background(), campaign, minequery.WithBaseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign targets: %d visitors (path=%s, %.1f units; black-box scan %.1f units)\n",
		len(res.Rows), res.AccessPath, res.Stats.CostUnits, base.Stats.CostUnits)

	// A label outside the model's class set: provably empty, so the
	// optimizer answers without touching the table at all.
	const cricket = `SELECT visitor_id FROM visitors
		PREDICTION JOIN fans AS m ON m.sports_pages = visitors.sports_pages AND m.night_visits = visitors.night_visits
		WHERE m.fan_of = 'cricket'`
	empty, err := eng.Query(context.Background(), cricket)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cricket fans: %d rows via %s plan (heap untouched: %d page reads)\n",
		len(empty.Rows), empty.AccessPath, empty.Stats.SeqPageReads+empty.Stats.RandPageReads)
	for _, n := range empty.RewriteNotes {
		fmt.Println("  rewrite:", n)
	}
}
