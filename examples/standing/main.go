// Standing queries: register "notify me when predict(risk)='high' AND
// region='EU'" once, then let the write stream drive it — every
// committed batch is classified envelope-first against the whole
// registered set, and matches arrive on a bounded notification queue.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"minequery"
)

func main() {
	eng := minequery.New()

	// 1. A transactions table and a risk model trained on seed data.
	err := eng.CreateTable("tx", minequery.MustSchema(
		minequery.Column{Name: "id", Kind: minequery.KindInt},
		minequery.Column{Name: "region", Kind: minequery.KindString},
		minequery.Column{Name: "amount", Kind: minequery.KindInt},
		minequery.Column{Name: "risk", Kind: minequery.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	regions := []string{"EU", "US", "APAC"}
	rows := make([]minequery.Tuple, 0, 20000)
	for i := 0; i < 20000; i++ {
		amount := int64(r.Intn(1000))
		risk := "low"
		if amount >= 900 {
			risk = "high"
		}
		rows = append(rows, minequery.Tuple{
			minequery.Int(int64(i)), minequery.Str(regions[r.Intn(3)]),
			minequery.Int(amount), minequery.Str(risk),
		})
	}
	if err := eng.InsertBatch("tx", rows); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.TrainDecisionTree("risk_model", "risk", "tx",
		[]string{"amount"}, "risk", minequery.TreeOptions{}); err != nil {
		log.Fatal(err)
	}

	// 2. Register the standing query. The SELECT's projection is what
	// each notification carries; the WHERE mixes a mining predicate
	// (envelope-gated, model-called only for envelope survivors) with a
	// data predicate.
	subID, err := eng.Subscribe(`SELECT id, amount, m.risk FROM tx
		PREDICTION JOIN risk_model AS m ON m.amount = tx.amount
		WHERE m.risk = 'high' AND region = 'EU'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subscription %d registered\n", subID)

	// 3. Commit writes through the normal DML path. Standing evaluation
	// rides the commit: by the time Exec returns, matches are queued.
	ctx := context.Background()
	stmts := []string{
		"INSERT INTO tx (id, region, amount, risk) VALUES (100001, 'EU', 990, 'x'), (100002, 'US', 995, 'x')",
		"INSERT INTO tx (id, region, amount, risk) VALUES (100003, 'EU', 10, 'x')",
		"INSERT INTO tx (id, region, amount, risk) VALUES (100004, 'EU', 950, 'x')",
	}
	for _, sql := range stmts {
		if _, err := eng.Exec(ctx, sql); err != nil {
			log.Fatal(err)
		}
	}

	// 4. Drain the notifications: only the EU rows the model calls
	// high-risk made it through (100001 and 100004).
	pctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	ns, err := eng.Notifications(pctx, 100)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range ns {
		fmt.Printf("match for sub %d: %v (columns %v)\n", n.SubID, n.Row, n.Columns)
	}

	// 5. The shared-set accounting: rows rejected by the envelope never
	// reached the model.
	st := eng.StandingStats()
	fmt.Printf("evals=%d matches=%d model_calls=%d dropped=%d\n",
		st.Evals, st.Matches, st.ModelCalls, st.Dropped)
}
