// Quickstart: build a table, train a decision tree, and watch the upper
// envelope turn a mining-predicate query into an index plan.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"minequery"
)

func main() {
	eng := minequery.New()

	// 1. A customers table.
	err := eng.CreateTable("customers", minequery.MustSchema(
		minequery.Column{Name: "id", Kind: minequery.KindInt},
		minequery.Column{Name: "age", Kind: minequery.KindInt},
		minequery.Column{Name: "income", Kind: minequery.KindInt},
		minequery.Column{Name: "risk", Kind: minequery.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	rows := make([]minequery.Tuple, 0, 50000)
	for i := 0; i < 50000; i++ {
		age, income := int64(r.Intn(12)), int64(r.Intn(15))
		risk := "low"
		if age <= 1 && income >= 9 && income <= 10 { // ~2% of customers
			risk = "high"
		}
		rows = append(rows, minequery.Tuple{
			minequery.Int(int64(i)), minequery.Int(age), minequery.Int(income), minequery.Str(risk),
		})
	}
	if err := eng.InsertBatch("customers", rows); err != nil {
		log.Fatal(err)
	}

	// 2. Train a decision tree on the stored data. Training also derives
	// and caches the per-class upper envelopes (exact for trees).
	info, err := eng.TrainDecisionTree("risk_model", "risk", "customers",
		[]string{"age", "income"}, "risk", minequery.TreeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s: classes=%v train=%v envelopes=%v (exact=%v)\n",
		info.Name, info.Classes, info.TrainTime, info.EnvelopeTime, info.ExactEnvelopes)
	env, _ := eng.Envelope("risk_model", minequery.Str("high"))
	fmt.Println("upper envelope for risk='high':", env)

	// 3. A physical design and fresh statistics.
	if err := eng.CreateIndex("ix_income_age", "customers", "income", "age"); err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze("customers"); err != nil {
		log.Fatal(err)
	}

	// 4. The mining-predicate query, with and without the optimization.
	const q = `SELECT id FROM customers
		PREDICTION JOIN risk_model AS m ON m.age = customers.age AND m.income = customers.income
		WHERE m.risk = 'high'`

	optimized, err := eng.Query(context.Background(), q)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := eng.Query(context.Background(), q, minequery.WithBaseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline  : %4d rows, path=%-11s cost=%8.1f units\n",
		len(baseline.Rows), baseline.AccessPath, baseline.Stats.CostUnits)
	fmt.Printf("optimized : %4d rows, path=%-11s cost=%8.1f units (%.0f%% cheaper)\n",
		len(optimized.Rows), optimized.AccessPath, optimized.Stats.CostUnits,
		100*(baseline.Stats.CostUnits-optimized.Stats.CostUnits)/baseline.Stats.CostUnits)
	fmt.Println("\noptimized plan:")
	fmt.Print(optimized.Plan)
}
