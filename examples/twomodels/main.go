// Twomodels: the paper's Section 4.1 join between two predicted columns —
// "find all visitors who are predicted to be web developers by both the
// SAS model and the SPSS model". Two different model families are
// trained on the same data; the rewriter takes the disjunction of the
// per-class envelope conjunctions over the common labels.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"minequery"
)

func main() {
	eng := minequery.New()
	err := eng.CreateTable("visitors", minequery.MustSchema(
		minequery.Column{Name: "id", Kind: minequery.KindInt},
		minequery.Column{Name: "repos", Kind: minequery.KindInt},
		minequery.Column{Name: "docs_pages", Kind: minequery.KindInt},
		minequery.Column{Name: "job", Kind: minequery.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	rows := make([]minequery.Tuple, 0, 40000)
	for i := 0; i < 40000; i++ {
		repos, docs := int64(r.Intn(10)), int64(r.Intn(10))
		job := "other"
		if repos >= 8 && docs >= 7 { // ~6% of visitors
			job = "webdev"
		}
		rows = append(rows, minequery.Tuple{
			minequery.Int(int64(i)), minequery.Int(repos), minequery.Int(docs), minequery.Str(job),
		})
	}
	if err := eng.InsertBatch("visitors", rows); err != nil {
		log.Fatal(err)
	}
	// Two independently trained models over the same source columns.
	if _, err := eng.TrainDecisionTree("sas_model", "job", "visitors",
		[]string{"repos", "docs_pages"}, "job", minequery.TreeOptions{}); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.TrainNaiveBayes("spss_model", "job", "visitors",
		[]string{"repos", "docs_pages"}, "job", minequery.BayesOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := eng.CreateIndex("ix_repos_docs", "visitors", "repos", "docs_pages"); err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze("visitors"); err != nil {
		log.Fatal(err)
	}

	// Concurrence: both models must predict webdev.
	const concur = `SELECT id FROM visitors
		PREDICTION JOIN sas_model AS m1 ON m1.repos = visitors.repos AND m1.docs_pages = visitors.docs_pages
		PREDICTION JOIN spss_model AS m2 ON m2.repos = visitors.repos AND m2.docs_pages = visitors.docs_pages
		WHERE m1.job = m2.job AND m1.job = 'webdev'`
	res, err := eng.Query(context.Background(), concur)
	if err != nil {
		log.Fatal(err)
	}
	base, err := eng.Query(context.Background(), concur, minequery.WithBaseline())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("both models say webdev: %d visitors (path=%s, %.1f units; baseline %.1f units)\n",
		len(res.Rows), res.AccessPath, res.Stats.CostUnits, base.Stats.CostUnits)

	// Where do the models disagree? The general concurrence join keeps
	// every common class.
	const agree = `SELECT id FROM visitors
		PREDICTION JOIN sas_model AS m1 ON m1.repos = visitors.repos AND m1.docs_pages = visitors.docs_pages
		PREDICTION JOIN spss_model AS m2 ON m2.repos = visitors.repos AND m2.docs_pages = visitors.docs_pages
		WHERE m1.job = m2.job`
	res2, err := eng.Query(context.Background(), agree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("models agree on %d of 40000 visitors (%.1f%%)\n",
		len(res2.Rows), 100*float64(len(res2.Rows))/40000)
}
