// Crossval: the paper's Section 4.1 join between a predicted column and
// a data column — "find all customers for whom the predicted age
// category equals the actual one", the cross-validation query. The
// rewriter enumerates the class labels and, with the transitivity rule,
// prunes classes that extra data predicates rule out.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"minequery"
)

func main() {
	eng := minequery.New()
	err := eng.CreateTable("people", minequery.MustSchema(
		minequery.Column{Name: "id", Kind: minequery.KindInt},
		minequery.Column{Name: "purchases", Kind: minequery.KindInt},
		minequery.Column{Name: "web_hours", Kind: minequery.KindInt},
		minequery.Column{Name: "age_cat", Kind: minequery.KindString},
	))
	if err != nil {
		log.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	cats := []string{"young", "middle-aged", "senior"}
	rows := make([]minequery.Tuple, 0, 40000)
	for i := 0; i < 40000; i++ {
		purchases, hours := int64(r.Intn(8)), int64(r.Intn(8))
		cat := cats[0]
		switch {
		case purchases >= 5 && hours <= 2:
			cat = cats[2]
		case purchases >= 3:
			cat = cats[1]
		}
		if r.Intn(20) == 0 { // some label noise so prediction != actual sometimes
			cat = cats[r.Intn(3)]
		}
		rows = append(rows, minequery.Tuple{
			minequery.Int(int64(i)), minequery.Int(purchases), minequery.Int(hours), minequery.Str(cat),
		})
	}
	if err := eng.InsertBatch("people", rows); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.TrainDecisionTree("agemodel", "age_cat", "people",
		[]string{"purchases", "web_hours"}, "age_cat", minequery.TreeOptions{}); err != nil {
		log.Fatal(err)
	}
	if err := eng.CreateIndex("ix_purchases_hours", "people", "purchases", "web_hours"); err != nil {
		log.Fatal(err)
	}
	if err := eng.Analyze("people"); err != nil {
		log.Fatal(err)
	}

	// Plain cross-validation: predicted category equals the stored one.
	const xval = `SELECT id FROM people
		PREDICTION JOIN agemodel AS m ON m.purchases = people.purchases AND m.web_hours = people.web_hours
		WHERE m.age_cat = age_cat`
	res, err := eng.Query(context.Background(), xval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction matches stored label for %d of 40000 people (%.1f%% accuracy)\n",
		len(res.Rows), 100*float64(len(res.Rows))/40000)

	// With the paper's transitivity example: the stored category is
	// restricted, so the prediction is too, and only those classes'
	// envelopes survive simplification.
	const restricted = `SELECT id FROM people
		PREDICTION JOIN agemodel AS m ON m.purchases = people.purchases AND m.web_hours = people.web_hours
		WHERE m.age_cat = age_cat AND age_cat IN ('senior', 'middle-aged')`
	res2, err := eng.Query(context.Background(), restricted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restricted to senior/middle-aged: %d rows, path=%s\n", len(res2.Rows), res2.AccessPath)
	for _, n := range res2.RewriteNotes {
		fmt.Println("  rewrite:", n)
	}
}
