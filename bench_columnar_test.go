// Row-vs-columnar scan-filter benchmarks: the same disjunctive
// predicate executed through the row-at-a-time batch filter and through
// the vectorized column-group path with adaptive term ordering, at 1, 4,
// and 16 disjuncts. The columnar speedup on wide disjunctions is the
// headline number recorded in BENCH_columnar.json.
package minequery

import (
	"fmt"
	"testing"

	"minequery/internal/catalog"
	"minequery/internal/exec"
	"minequery/internal/expr"
	"minequery/internal/plan"
	"minequery/internal/value"
)

// benchColRows sizes the scan-filter benchmark table: large enough that
// per-tuple dispatch dominates the row path, small enough for -bench
// sweeps.
const benchColRows = 50000

// benchColDB builds a deterministic two-int-column table with the
// columnar sidecar fresh.
func benchColDB(b *testing.B) (*catalog.Catalog, *catalog.Table) {
	b.Helper()
	cc := catalog.New()
	tb, err := cc.CreateTable("bt", value.MustSchema(
		value.Column{Name: "a", Kind: value.KindInt},
		value.Column{Name: "num", Kind: value.KindInt},
	))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchColRows; i++ {
		if _, err := tb.Insert(value.Tuple{
			value.Int(int64(i % 997)), value.Int(int64(i % 100)),
		}); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := tb.Analyze(); err != nil {
		b.Fatal(err)
	}
	if err := tb.EnableColumnar(); err != nil {
		b.Fatal(err)
	}
	return cc, tb
}

// disjuncts builds an n-term OR over the benchmark table's columns with
// deliberately uneven selectivities, so adaptive ordering has something
// to exploit.
func disjuncts(n int) expr.Expr {
	kids := make([]expr.Expr, n)
	for i := range kids {
		if i%2 == 0 {
			kids[i] = expr.Cmp{Col: "a", Op: expr.OpEq, Val: value.Int(int64(i * 13))}
		} else {
			kids[i] = expr.Cmp{Col: "num", Op: expr.OpEq, Val: value.Int(int64(90 + i%10))}
		}
	}
	if n == 1 {
		return kids[0]
	}
	return expr.Or{Kids: kids}
}

func benchScanFilter(b *testing.B, nTerms int, columnar bool) {
	cc, tb := benchColDB(b)
	pred := disjuncts(nTerms)
	p := &plan.Filter{
		Child: &plan.SeqScan{Table: tb.Name, Columnar: columnar},
		Pred:  pred,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, err := exec.RunOpts(cc, p, exec.Options{DOP: 1, BatchSize: 256})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("benchmark predicate selected no rows")
		}
	}
}

func BenchmarkScanFilterRow(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("disjuncts=%d", n), func(b *testing.B) {
			benchScanFilter(b, n, false)
		})
	}
}

func BenchmarkScanFilterColumnar(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("disjuncts=%d", n), func(b *testing.B) {
			benchScanFilter(b, n, true)
		})
	}
}
