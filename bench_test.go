// Benchmarks regenerating the paper's tables and figures (one bench per
// experiment; see DESIGN.md's per-experiment index) plus the ablation
// benches for the design choices DESIGN.md calls out. Each workload
// bench reports the paper's metrics with testing.B custom metrics:
// avg % cost reduction (table A), % plans changed (table B), and — for
// the overhead experiment — the derive/train time ratio.
package minequery

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"minequery/internal/catalog"
	"minequery/internal/core"
	"minequery/internal/dataset"
	"minequery/internal/exec"
	"minequery/internal/expr"
	"minequery/internal/mining"
	"minequery/internal/mining/nbayes"
	"minequery/internal/opt"
	"minequery/internal/plan"
	"minequery/internal/value"
	"minequery/internal/workload"
)

// benchRows keeps benchmark tables small enough for -bench=. sweeps; use
// cmd/experiments for the full-scale runs.
const benchRows = 8000

// benchSpecs is the subset of Table 2 exercised by the per-family
// benches: one small, one multi-class, one wide data set.
func benchSpecs() []*dataset.Spec {
	return []*dataset.Spec{
		dataset.ByName("Balance-Scale"),
		dataset.ByName("Shuttle"),
		dataset.ByName("Chess"),
	}
}

// runFamily drives the Section 5 experiment for one model family and
// reports the paper's two headline metrics.
func runFamily(b *testing.B, kind workload.ModelKind) {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.TestRows = benchRows
	var redSum, chgSum float64
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		redSum, chgSum = 0, 0
		n = 0
		for _, spec := range benchSpecs() {
			res, err := workload.Run(spec, kind, cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, q := range res.Queries {
				redSum += q.Reduction()
				if q.PlanChanged {
					chgSum++
				}
				n++
			}
		}
	}
	if n > 0 {
		b.ReportMetric(redSum/float64(n), "avg-reduction-%")
		b.ReportMetric(100*chgSum/float64(n), "plans-changed-%")
	}
}

// BenchmarkRuntimeReductionDecisionTree regenerates the decision-tree
// column of Section 5.2.1 table A (and Figure 3's per-data-set rows).
func BenchmarkRuntimeReductionDecisionTree(b *testing.B) {
	runFamily(b, workload.KindDecisionTree)
}

// BenchmarkRuntimeReductionNaiveBayes regenerates the naive Bayes column
// of table A (and Figure 4).
func BenchmarkRuntimeReductionNaiveBayes(b *testing.B) {
	runFamily(b, workload.KindNaiveBayes)
}

// BenchmarkRuntimeReductionClustering regenerates the clustering column
// of table A (and Figure 5).
func BenchmarkRuntimeReductionClustering(b *testing.B) {
	runFamily(b, workload.KindClustering)
}

// BenchmarkPlanChange regenerates Section 5.2.1 table B across all three
// families on the bench subset.
func BenchmarkPlanChange(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.TestRows = benchRows
	var changed, n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		changed, n = 0, 0
		for _, spec := range benchSpecs() {
			for _, kind := range workload.PaperKinds() {
				res, err := workload.Run(spec, kind, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, q := range res.Queries {
					if q.PlanChanged {
						changed++
					}
					n++
				}
			}
		}
	}
	if n > 0 {
		b.ReportMetric(100*float64(changed)/float64(n), "plans-changed-%")
	}
}

// BenchmarkSelectivityBuckets regenerates Figure 6's bucketing: it
// reports the average reduction for queries under 10% envelope
// selectivity versus at-or-above (the figure's key contrast).
func BenchmarkSelectivityBuckets(b *testing.B) {
	cfg := workload.DefaultConfig()
	cfg.TestRows = benchRows
	var loSum, hiSum float64
	var loN, hiN int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loSum, hiSum = 0, 0
		loN, hiN = 0, 0
		for _, spec := range benchSpecs() {
			for _, kind := range workload.PaperKinds() {
				res, err := workload.Run(spec, kind, cfg)
				if err != nil {
					b.Fatal(err)
				}
				for _, q := range res.Queries {
					if q.EnvSelectivity < 0.10 {
						loSum += q.Reduction()
						loN++
					} else {
						hiSum += q.Reduction()
						hiN++
					}
				}
			}
		}
	}
	if loN > 0 {
		b.ReportMetric(loSum/float64(loN), "reduction-below-10%-sel")
	}
	if hiN > 0 {
		b.ReportMetric(hiSum/float64(hiN), "reduction-above-10%-sel")
	}
}

// BenchmarkTable2DatasetGen measures the synthetic generators behind
// Table 2 (rows generated per second across all ten specs).
func BenchmarkTable2DatasetGen(b *testing.B) {
	specs := dataset.Table2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			n := 0
			s.TestRows(2000, func(value.Tuple) { n++ })
			if n != 2000 {
				b.Fatal("short generation")
			}
		}
	}
}

// BenchmarkEnvelopeDerivationTree measures exact tree-envelope
// extraction (the training-time precompute of Section 4.2) and reports
// the derive/train ratio the overhead experiment claims is negligible.
func BenchmarkEnvelopeDerivationTree(b *testing.B) {
	benchDerivation(b, workload.KindDecisionTree)
}

// BenchmarkEnvelopeDerivationBayes measures top-down derivation for
// naive Bayes models.
func BenchmarkEnvelopeDerivationBayes(b *testing.B) {
	benchDerivation(b, workload.KindNaiveBayes)
}

func benchDerivation(b *testing.B, kind workload.ModelKind) {
	b.Helper()
	cfg := workload.DefaultConfig()
	cfg.TestRows = 2000 // derivation cost does not depend on the test table
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(dataset.ByName("Shuttle"), kind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.TrainTime > 0 {
			ratio = float64(res.EnvelopeTime) / float64(res.TrainTime)
		}
	}
	b.ReportMetric(ratio, "derive/train-ratio")
}

// BenchmarkOptimizeOverhead measures access-path selection over an
// envelope-augmented predicate (the §4.2 claim that envelope lookup adds
// little to optimization).
func BenchmarkOptimizeOverhead(b *testing.B) {
	table, env := benchEnvelopeFixture(b)
	cfg := opt.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.ChooseAccessPath(table, env, cfg)
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// ablationGrid builds a naive Bayes grid for the ablations.
func ablationGrid(b *testing.B) *core.Grid {
	b.Helper()
	spec := dataset.ByName("Balance-Scale")
	m, err := nbayes.Train("m", "p", spec.TrainSet(), nbayes.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return core.GridFromNaiveBayes(m)
}

// BenchmarkTopDownVsEnumeration contrasts Algorithm 1 against the
// exponential enumeration baseline (§3.2.2's complexity claim), on the
// 8-attribute Diabetes grid (~5M cells — the regime where the paper's
// "naive algorithm took more than 24 hours" observation starts to bite;
// the top-down algorithm never visits individual cells).
func BenchmarkTopDownVsEnumeration(b *testing.B) {
	spec := dataset.ByName("Diabetes")
	m, err := nbayes.Train("m", "p", spec.TrainSet(), nbayes.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := core.GridFromNaiveBayes(m)
	b.Run("topdown", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.TopDownEnvelope(g, 0, core.Options{MaxExpansions: 512}, nil)
		}
	})
	b.Run("enumeration", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.EnumerationEnvelope(g, 0, 10_000_000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkK2ExactBounds contrasts the paper's simple bounds with the
// Lemma 3.2 ratio bounds on a two-class model.
func BenchmarkK2ExactBounds(b *testing.B) {
	spec := dataset.ByName("Diabetes")
	m, err := nbayes.Train("m", "p", spec.TrainSet(), nbayes.Options{})
	if err != nil {
		b.Fatal(err)
	}
	g := core.GridFromNaiveBayes(m)
	for _, bk := range []struct {
		name string
		kind core.BoundsKind
	}{{"simple", core.BoundsSimple}, {"ratio", core.BoundsRatio}} {
		b.Run(bk.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TopDownEnvelope(g, 1, core.Options{MaxExpansions: 256, Bounds: bk.kind}, nil)
			}
		})
	}
}

// BenchmarkShrinkAblation measures Algorithm 1 with and without the
// Shrink step.
func BenchmarkShrinkAblation(b *testing.B) {
	g := ablationGrid(b)
	for _, shrink := range []bool{true, false} {
		name := "with-shrink"
		if !shrink {
			name = "no-shrink"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.TopDownEnvelope(g, 0, core.Options{MaxExpansions: 512, DisableShrink: !shrink}, nil)
			}
		})
	}
}

// BenchmarkDisjunctThreshold sweeps the §4.2 disjunct budget.
func BenchmarkDisjunctThreshold(b *testing.B) {
	g := ablationGrid(b)
	for _, max := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("max=%d", max), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GridEnvelope(g, 0, core.Options{MaxExpansions: 512, MaxDisjuncts: max})
			}
		})
	}
}

// BenchmarkAccessPathCrossover sweeps predicate selectivity across the
// scan/index crossover and reports the fraction of plans that chose an
// index (expected: 1 at low selectivity, 0 at high).
func BenchmarkAccessPathCrossover(b *testing.B) {
	table, _ := benchEnvelopeFixture(b)
	cfg := opt.DefaultConfig()
	for _, hi := range []int64{0, 2, 12, 49} { // sel ~2%, 6%, 26%, 100%
		b.Run(fmt.Sprintf("hi=%d", hi), func(b *testing.B) {
			pred := expr.Cmp{Col: "num", Op: expr.OpLe, Val: value.Int(hi)}
			indexed := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := opt.ChooseAccessPath(table, pred, cfg)
				if res.Path == plan.AccessSeqScan {
					indexed = 0
				} else {
					indexed = 1
				}
			}
			b.ReportMetric(indexed, "index-chosen")
		})
	}
}

// BenchmarkQueryEndToEnd measures full Query latency on the root API for
// an envelope-optimized mining query versus the black-box baseline.
func BenchmarkQueryEndToEnd(b *testing.B) {
	eng := seedEngine(b, 20000)
	trainNB(b, eng)
	if err := eng.CreateIndex("ix_age_income", "customers", "age", "income"); err != nil {
		b.Fatal(err)
	}
	if err := eng.Analyze("customers"); err != nil {
		b.Fatal(err)
	}
	b.Run("optimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(context.Background(), nbQuery); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(context.Background(), nbQuery, WithBaseline()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkParallelSeqScan contrasts the serial sequential scan with the
// morsel-driven parallel scan (DOP 2..8) on a large synthetic table,
// through a full scan-filter-project plan. Every sub-bench asserts the
// same output row count: morsel reassembly is order-preserving, so DOP
// must not change results. On a multi-core machine the DOP >= 4 rows
// beat dop=1; with a single core the win shrinks to pipelining overlap.
func BenchmarkParallelSeqScan(b *testing.B) {
	cat, table, want := parallelScanFixture(b)
	root := &plan.Filter{
		Child: &plan.SeqScan{Table: table.Name},
		Pred:  expr.Cmp{Col: "num", Op: expr.OpGe, Val: value.Int(25)},
	}
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			opts := exec.Options{DOP: dop}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, _, err := exec.RunOpts(cat, root, opts)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != want {
					b.Fatalf("dop=%d returned %d rows, serial scan returns %d", dop, len(rows), want)
				}
			}
			b.ReportMetric(float64(want), "rows")
		})
	}
}

var (
	parallelFixtureOnce  sync.Once
	parallelFixtureCat   *catalog.Catalog
	parallelFixtureTable *catalog.Table
	parallelFixtureWant  int
)

// parallelScanFixture builds (once) a 200k-row three-column table and
// the expected match count for the scan benchmark's filter.
func parallelScanFixture(b *testing.B) (*catalog.Catalog, *catalog.Table, int) {
	b.Helper()
	parallelFixtureOnce.Do(func() {
		cat := catalog.New()
		table, err := cat.CreateTable("parscan", value.MustSchema(
			value.Column{Name: "num", Kind: value.KindInt},
			value.Column{Name: "aux", Kind: value.KindFloat},
			value.Column{Name: "tag", Kind: value.KindString},
		))
		if err != nil {
			b.Fatal(err)
		}
		r := rand.New(rand.NewSource(53))
		want := 0
		for i := 0; i < 200000; i++ {
			num := int64(r.Intn(50))
			if num >= 25 {
				want++
			}
			_, err := table.Insert(value.Tuple{
				value.Int(num),
				value.Float(r.Float64()),
				value.Str(fmt.Sprintf("tag-%04d", r.Intn(2000))),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		parallelFixtureCat, parallelFixtureTable, parallelFixtureWant = cat, table, want
	})
	return parallelFixtureCat, parallelFixtureTable, parallelFixtureWant
}

// --- bench fixtures ---

// benchEnvelopeFixture builds a 20k-row table with a num column uniform
// over [0, 50), a secondary index on it, and a trained naive Bayes
// envelope predicate over the same data, for the optimizer benches.
func benchEnvelopeFixture(b *testing.B) (*catalog.Table, expr.Expr) {
	b.Helper()
	cat := catalog.New()
	table, err := cat.CreateTable("bench", value.MustSchema(
		value.Column{Name: "num", Kind: value.KindInt},
		value.Column{Name: "aux", Kind: value.KindInt},
		value.Column{Name: "label", Kind: value.KindString},
	))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	ts := &mining.TrainSet{Schema: value.MustSchema(
		value.Column{Name: "num", Kind: value.KindInt},
		value.Column{Name: "aux", Kind: value.KindInt},
	)}
	for i := 0; i < 20000; i++ {
		num, aux := int64(r.Intn(50)), int64(r.Intn(8))
		label := "common"
		if num < 2 && aux >= 6 {
			label = "rare"
		}
		row := value.Tuple{value.Int(num), value.Int(aux), value.Str(label)}
		if _, err := table.Insert(row); err != nil {
			b.Fatal(err)
		}
		if i < 3000 {
			ts.Rows = append(ts.Rows, row[:2])
			ts.Labels = append(ts.Labels, row[2])
		}
	}
	if _, err := cat.CreateIndex("ix_num_aux", "bench", "num", "aux"); err != nil {
		b.Fatal(err)
	}
	table.Analyze()
	m, err := nbayes.Train("bm", "label", ts, nbayes.Options{})
	if err != nil {
		b.Fatal(err)
	}
	der, err := core.UpperEnvelopes(m, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	env, ok := der.Envelopes[value.Str("rare").String()]
	if !ok {
		b.Fatal("missing envelope")
	}
	return table, env
}
