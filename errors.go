package minequery

import (
	"minequery/internal/qerr"
	"minequery/internal/standing"
)

// Sentinel errors. Every error the engine returns for these conditions
// wraps the corresponding sentinel, so callers branch with errors.Is
// instead of matching message text. (ErrStalePlan, the fourth sentinel,
// is declared alongside the prepared-statement API in prepared.go.)
var (
	// ErrParse marks a SQL lexing or parsing failure.
	ErrParse = qerr.ErrParse
	// ErrUnknownTable marks a reference to a table the engine does not
	// hold.
	ErrUnknownTable = qerr.ErrUnknownTable
	// ErrUnknownModel marks a reference to a mining model the engine
	// does not hold.
	ErrUnknownModel = qerr.ErrUnknownModel
	// ErrUnsupportedQuery marks a query that parses but lies outside
	// the executable dialect — most commonly an aggregate shape the
	// planner rejects (SELECT * with GROUP BY, a select-list column
	// missing from GROUP BY, SUM/AVG over a non-numeric column).
	ErrUnsupportedQuery = qerr.ErrUnsupportedQuery
	// ErrRetrainFailed marks an Exec whose rows committed durably but
	// whose write-volume retrain failed afterwards. Exec returns the
	// statement's result (RowsAffected, Epoch, any models retrained
	// before the failure) ALONGSIDE an error wrapping this sentinel —
	// callers must not treat the statement as failed, and must not
	// re-issue it. The retrain retries on the next write to the table.
	ErrRetrainFailed = qerr.ErrRetrainFailed
	// ErrUnknownSubscription marks an Unsubscribe of an id that is not
	// registered.
	ErrUnknownSubscription = standing.ErrUnknownSubscription
)
