package minequery

import "minequery/internal/qerr"

// Sentinel errors. Every error the engine returns for these conditions
// wraps the corresponding sentinel, so callers branch with errors.Is
// instead of matching message text. (ErrStalePlan, the fourth sentinel,
// is declared alongside the prepared-statement API in prepared.go.)
var (
	// ErrParse marks a SQL lexing or parsing failure.
	ErrParse = qerr.ErrParse
	// ErrUnknownTable marks a reference to a table the engine does not
	// hold.
	ErrUnknownTable = qerr.ErrUnknownTable
	// ErrUnknownModel marks a reference to a mining model the engine
	// does not hold.
	ErrUnknownModel = qerr.ErrUnknownModel
	// ErrUnsupportedQuery marks a query that parses but lies outside
	// the executable dialect — most commonly an aggregate shape the
	// planner rejects (SELECT * with GROUP BY, a select-list column
	// missing from GROUP BY, SUM/AVG over a non-numeric column).
	ErrUnsupportedQuery = qerr.ErrUnsupportedQuery
)
