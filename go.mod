module minequery

go 1.22
