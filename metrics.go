package minequery

import (
	"strconv"
	"time"

	"minequery/internal/exec"
	"minequery/internal/metrics"
	"minequery/internal/plan"
)

// MetricsRegistry is the engine's metrics registry type (re-exported so
// downstream users never import internal packages). Register engine
// series with Engine.RegisterMetrics, add your own alongside, and
// expose everything with WritePrometheus.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// engineMetrics holds the engine-wide series. The struct is installed
// atomically on the Engine so the query path reads one pointer; a nil
// receiver disables every observation.
type engineMetrics struct {
	queriesByPath   *metrics.CounterVec
	stageSeconds    *metrics.HistogramVec
	rowsScanned     *metrics.Counter
	rowsReturned    *metrics.Counter
	fallbacks       *metrics.Counter
	retriesTotal    *metrics.Counter
	partsPruned     *metrics.Counter
	partsScanned    *metrics.Counter
	columnarScans   *metrics.Counter
	termRejected    *metrics.CounterVec
	aggQueries      *metrics.Counter
	aggMerges       *metrics.Counter
	walAppends      *metrics.Counter
	walFsyncs       *metrics.Counter
	walReplayed     *metrics.Counter
	dmlStatements   *metrics.CounterVec
	dmlRows         *metrics.Counter
	retrains        *metrics.Counter
	retrainFailures *metrics.Counter
}

// dmlOpLabels pre-creates the per-op statement children so the frozen
// series list is visible on an idle engine.
var dmlOpLabels = []string{"insert", "update", "delete", "create_model"}

// columnarTermLabels pre-creates per-term rejection children for the
// first few term positions so the frozen series list is visible on an
// idle engine; wider predicates add children on first use.
var columnarTermLabels = []string{"0", "1", "2", "3"}

// queryStages are the pipeline stages timed per query.
var queryStages = []string{"parse", "rewrite", "optimize", "execute"}

// RegisterMetrics registers the engine-wide series on r and starts
// feeding them from every subsequent query:
//
//	minequery_queries_total{path}        completed queries by access path
//	minequery_query_stage_seconds{stage} per-stage latency histogram
//	minequery_rows_scanned_total         tuples read from storage
//	minequery_rows_returned_total        tuples returned to callers
//	minequery_fallbacks_total            index-path queries degraded to seqscan
//	minequery_retries_total              transient failures absorbed by retry
//	minequery_partitions_pruned_total    partitions proven disjoint and skipped
//	minequery_partitions_scanned_total   partitions surviving pruning
//	minequery_columnar_scans_total       scans executed on the column-group path
//	minequery_columnar_term_rejected_total{term} rows rejected per predicate term position
//	minequery_agg_queries_total          completed GROUP BY / aggregate queries
//	minequery_agg_partial_merges_total   partial-aggregate state merges (workers, partitions, shards)
//	minequery_wal_appends_total          WAL frames appended by write statements
//	minequery_wal_fsyncs_total           WAL fsync barriers completed
//	minequery_wal_replay_frames_total    WAL frames replayed during recovery
//	minequery_dml_statements_total{op}   completed write statements by kind
//	minequery_dml_rows_total             rows written (inserted, updated, deleted)
//	minequery_retrains_total             models retrained by the write-volume trigger
//	minequery_retrain_failures_total     write-volume retrains that failed (writes stay committed; retried next write)
//	minequery_standing_registered        live standing-query subscriptions
//	minequery_standing_matches_total     standing-query matches generated (delivered or dropped)
//	minequery_standing_evals_total       (row, candidate-subscription) standing evaluations after index pruning
//	minequery_standing_dropped_total     standing notifications dropped on a full queue
//	minequery_standing_recompiles_total  shared standing-set recompilations
//
// Call it once per registry; series names panic on double registration.
func (e *Engine) RegisterMetrics(r *MetricsRegistry) {
	em := &engineMetrics{
		queriesByPath: r.CounterVec("minequery_queries_total",
			"Completed queries by base-table access path.", "path"),
		stageSeconds: r.HistogramVec("minequery_query_stage_seconds",
			"Per-stage query latency in seconds.", "stage", nil),
		rowsScanned: r.Counter("minequery_rows_scanned_total",
			"Tuples read from storage by query execution."),
		rowsReturned: r.Counter("minequery_rows_returned_total",
			"Tuples returned to callers by query execution."),
		fallbacks: r.Counter("minequery_fallbacks_total",
			"Queries whose index path failed transiently and re-ran on the baseline sequential scan."),
		retriesTotal: r.Counter("minequery_retries_total",
			"Transient storage/seek failures absorbed by the retry layer."),
		partsPruned: r.Counter("minequery_partitions_pruned_total",
			"Partitions the optimizer proved disjoint from the predicate and skipped."),
		partsScanned: r.Counter("minequery_partitions_scanned_total",
			"Partitions that survived pruning on queries over partitioned tables."),
		columnarScans: r.Counter("minequery_columnar_scans_total",
			"Sequential scans executed on the vectorized column-group path."),
		termRejected: r.CounterVec("minequery_columnar_term_rejected_total",
			"Rows rejected by each predicate term (by original term position) on columnar scans.", "term"),
		aggQueries: r.Counter("minequery_agg_queries_total",
			"Completed queries with GROUP BY or aggregate select items."),
		aggMerges: r.Counter("minequery_agg_partial_merges_total",
			"Partial-aggregate state merges across morsel workers, columnar groups, partitions, and shards."),
		walAppends: r.Counter("minequery_wal_appends_total",
			"WAL frames appended (and made durable) by write statements."),
		walFsyncs: r.Counter("minequery_wal_fsyncs_total",
			"WAL fsync barriers completed on the commit path."),
		walReplayed: r.Counter("minequery_wal_replay_frames_total",
			"WAL frames replayed during crash recovery."),
		dmlStatements: r.CounterVec("minequery_dml_statements_total",
			"Completed write statements by kind.", "op"),
		dmlRows: r.Counter("minequery_dml_rows_total",
			"Rows written by DML statements (inserted, updated, deleted)."),
		retrains: r.Counter("minequery_retrains_total",
			"Models retrained by the write-volume retrain trigger."),
		retrainFailures: r.Counter("minequery_retrain_failures_total",
			"Write-volume retrains that failed after a committed write (the write stays durable; the retrain retries on the next write)."),
	}
	// The standing-query series read the live Set counters on scrape, so
	// they need no feed path through the engine.
	r.GaugeFunc("minequery_standing_registered",
		"Live standing-query subscriptions.",
		func() float64 { return float64(e.standing.Registered()) })
	r.CounterFunc("minequery_standing_matches_total",
		"Standing-query matches generated (delivered or dropped).",
		func() float64 { return float64(e.standing.Matches()) })
	r.CounterFunc("minequery_standing_evals_total",
		"Per-row candidate-subscription evaluations that survived standing-index pruning.",
		func() float64 { return float64(e.standing.Evals()) })
	r.CounterFunc("minequery_standing_dropped_total",
		"Standing-query notifications dropped because the delivery queue was full.",
		func() float64 { return float64(e.standing.Dropped()) })
	r.CounterFunc("minequery_standing_recompiles_total",
		"Recompilations of the shared standing-query structure (subscription churn or catalog invalidation).",
		func() float64 { return float64(e.standing.Recompiles()) })
	// Pre-create the label children so every series is visible from the
	// first scrape (a frozen series list is lintable even on an idle
	// engine).
	for _, p := range []plan.AccessPath{plan.AccessSeqScan, plan.AccessIndex, plan.AccessIndexUnion, plan.AccessConstant} {
		em.queriesByPath.With(p.String())
	}
	for _, s := range queryStages {
		em.stageSeconds.With(s)
	}
	for _, l := range columnarTermLabels {
		em.termRejected.With(l)
	}
	for _, op := range dmlOpLabels {
		em.dmlStatements.With(op)
	}
	e.metrics.Store(em)
}

// stage records one pipeline stage's latency (nil-safe).
func (em *engineMetrics) stage(name string, d time.Duration) {
	if em == nil {
		return
	}
	em.stageSeconds.With(name).Observe(d.Seconds())
}

// query records one completed query (nil-safe).
func (em *engineMetrics) query(path string, scanned, returned int64) {
	if em == nil {
		return
	}
	em.queriesByPath.With(path).Inc()
	em.rowsScanned.Add(scanned)
	em.rowsReturned.Add(returned)
}

// fallback records one degraded execution (nil-safe).
func (em *engineMetrics) fallback() {
	if em == nil {
		return
	}
	em.fallbacks.Inc()
}

// retries records transient failures absorbed during one execution
// (nil-safe).
func (em *engineMetrics) retries(n int64) {
	if em == nil || n == 0 {
		return
	}
	em.retriesTotal.Add(n)
}

// columnar records one columnar-scan execution and its per-term
// rejection counts (nil-safe).
func (em *engineMetrics) columnar(info *exec.VecScanInfo) {
	if em == nil || info == nil {
		return
	}
	em.columnarScans.Inc()
	for _, t := range info.Terms {
		em.termRejected.With(strconv.Itoa(t.Index)).Add(t.Evaluated - t.Passed)
	}
}

// agg records one aggregate query and its partial-state merge count
// (nil-safe; no-op for non-aggregate queries).
func (em *engineMetrics) agg(isAgg bool, merges int64) {
	if em == nil || !isAgg {
		return
	}
	em.aggQueries.Inc()
	em.aggMerges.Add(merges)
}

// walAppend records one durable WAL frame: an append plus the fsync
// barrier that acked it (nil-safe).
func (em *engineMetrics) walAppend() {
	if em == nil {
		return
	}
	em.walAppends.Inc()
	em.walFsyncs.Inc()
}

// walReplay records frames replayed during recovery (nil-safe).
func (em *engineMetrics) walReplay(frames int64) {
	if em == nil || frames == 0 {
		return
	}
	em.walReplayed.Add(frames)
}

// dml records one completed write statement and its row count
// (nil-safe).
func (em *engineMetrics) dml(op string, rows int64) {
	if em == nil {
		return
	}
	em.dmlStatements.With(op).Inc()
	em.dmlRows.Add(rows)
}

// retrain records write-volume-triggered model retrains (nil-safe).
func (em *engineMetrics) retrain(n int64) {
	if em == nil {
		return
	}
	em.retrains.Add(n)
}

// retrainFailure records one failed write-volume retrain (nil-safe).
func (em *engineMetrics) retrainFailure() {
	if em == nil {
		return
	}
	em.retrainFailures.Inc()
}

// partitions records one query's partition-pruning outcome (nil-safe;
// no-op for unpartitioned tables, where total is 0).
func (em *engineMetrics) partitions(total, pruned int) {
	if em == nil || total == 0 {
		return
	}
	em.partsPruned.Add(int64(pruned))
	em.partsScanned.Add(int64(total - pruned))
}
