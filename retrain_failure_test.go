package minequery

// Regression tests for the write-path half-commit bugs: a retrain
// failure after the statement's mutations are durably applied must not
// be reported as a wholesale statement failure (the rows ARE committed
// and visible — clients that re-issue would double-apply), and the
// write counter that triggered the retrain must survive the failure so
// the very next write retries instead of silently waiting out another
// full threshold.

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// buildRetrainFailureEngine stages a table with a CREATE MODEL whose
// training view is `b >= 100`: deleting every such row makes the next
// retrain fail deterministically (empty train set), without any fault
// injection.
func buildRetrainFailureEngine(t *testing.T) *Engine {
	t.Helper()
	eng := New()
	if err := eng.CreateTable("t", MustSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindInt},
		Column{Name: "label", Kind: KindString},
	)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Exec(ctx, "INSERT INTO t (id, a, b, label) VALUES "+
		"(1, 1, 100, 'hi'), (2, 2, 110, 'lo'), (3, 3, 120, 'hi'), (4, 4, 130, 'lo'), "+
		"(5, 5, 140, 'hi'), (6, 6, 150, 'lo'), (7, 7, 10, 'hi'), (8, 8, 20, 'lo')"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Exec(ctx,
		"CREATE MODEL vm ON t PREDICT label USING dtree AS SELECT a, label FROM t WHERE b >= 100"); err != nil {
		t.Fatal(err)
	}
	eng.SetRetrainPolicy(RetrainPolicy{WriteThreshold: 4})
	return eng
}

// TestRetrainFailureIsNotStatementFailure pins the partial-success
// contract: when the DML commits but the triggered retrain fails, Exec
// returns BOTH the populated result (rows affected, epoch) and an error
// wrapping ErrRetrainFailed — and the committed rows are visible.
func TestRetrainFailureIsNotStatementFailure(t *testing.T) {
	eng := buildRetrainFailureEngine(t)
	ctx := context.Background()
	reg := NewMetricsRegistry()
	eng.RegisterMetrics(reg)
	epochBefore := eng.CatalogEpoch()

	// Deleting all six b>=100 rows crosses the threshold and empties the
	// training view: the retrain must fail, the delete must not.
	res, err := eng.Exec(ctx, "DELETE FROM t WHERE b >= 100")
	if err == nil {
		t.Fatal("retrain over an empty training view succeeded; fixture is broken")
	}
	if !errors.Is(err, ErrRetrainFailed) {
		t.Fatalf("error does not wrap ErrRetrainFailed: %v", err)
	}
	if res == nil {
		t.Fatalf("committed DELETE with failed retrain returned a nil result: %v", err)
	}
	if res.RowsAffected != 6 {
		t.Fatalf("rows affected = %d, want 6", res.RowsAffected)
	}
	if res.Epoch < epochBefore {
		t.Fatalf("result epoch %d regressed below %d", res.Epoch, epochBefore)
	}

	// Differential check: the delete really committed — the rows are
	// gone from every read path, so a client re-issuing the "failed"
	// statement would double-apply.
	q, err := eng.Query(ctx, "SELECT id FROM t WHERE b >= 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 0 {
		t.Fatalf("deleted rows still visible: %d remain", len(q.Rows))
	}
	q, err = eng.Query(ctx, "SELECT id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Rows) != 2 {
		t.Fatalf("table has %d rows, want the 2 untouched ones", len(q.Rows))
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "minequery_retrain_failures_total 1") {
		t.Fatalf("scrape is missing minequery_retrain_failures_total 1:\n%s", b.String())
	}
}

// TestRetrainRetriesOnNextWrite pins the counter-preservation fix: the
// failed retrain restores writesSince, so the very next write re-crosses
// the threshold and retries — it does not wait out a fresh threshold.
func TestRetrainRetriesOnNextWrite(t *testing.T) {
	eng := buildRetrainFailureEngine(t)
	ctx := context.Background()

	if _, err := eng.Exec(ctx, "DELETE FROM t WHERE b >= 100"); !errors.Is(err, ErrRetrainFailed) {
		t.Fatalf("setup delete: want ErrRetrainFailed, got %v", err)
	}

	// ONE row (far below the threshold of 4) repopulating the view: with
	// the counter preserved this re-crosses the threshold immediately,
	// the retrain retries, and this time it succeeds.
	res, err := eng.Exec(ctx, "INSERT INTO t (id, a, b, label) VALUES (100, 1, 200, 'hi')")
	if err != nil {
		t.Fatalf("retry retrain after view repopulated: %v", err)
	}
	if len(res.Retrained) != 1 || res.Retrained[0] != "vm" {
		t.Fatalf("retrained = %v, want [vm]: the preserved counter did not trigger a retry", res.Retrained)
	}

	// And the counter was consumed by the successful retrain: the next
	// single write stays below the threshold and retrains nothing.
	res, err = eng.Exec(ctx, "INSERT INTO t (id, a, b, label) VALUES (101, 1, 210, 'lo')")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Retrained) != 0 {
		t.Fatalf("post-success write retrained %v; counter was not reset", res.Retrained)
	}
}
